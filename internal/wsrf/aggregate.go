package wsrf

import (
	"fmt"

	"altstacks/internal/container"
)

// PortType is an importable set of WS-Addressing actions — the unit
// the WSRF.NET PortTypeAggregator composes: "all port types defined in
// all the WSRF and WSN specifications can be similarly imported,
// causing the importing service to export both their methods and their
// ResourceProperties" (paper §3.1).
type PortType interface {
	Actions() map[string]container.ActionFunc
}

// Aggregate merges the port types' actions into the service — the
// PortTypeAggregator step that turns a user-defined service into the
// deployable service. Action collisions panic: they are wiring errors.
func Aggregate(svc *container.Service, portTypes ...PortType) {
	if svc.Actions == nil {
		svc.Actions = map[string]container.ActionFunc{}
	}
	for _, pt := range portTypes {
		for action, fn := range pt.Actions() {
			if _, dup := svc.Actions[action]; dup {
				panic(fmt.Sprintf("wsrf: aggregate: duplicate action %q on %s", action, svc.Path))
			}
			svc.Actions[action] = fn
		}
	}
}

// Package bf implements WS-BaseFaults, "a standard exception reporting
// format" (paper §2.1): every fault a WSRF service raises carries a
// wsbf:BaseFault detail with a timestamp, an error code, and a
// description, so clients get uniform failures across port types.
package bf

import (
	"fmt"
	"time"

	"altstacks/internal/soap"
	"altstacks/internal/wsrf"
	"altstacks/internal/xmlutil"
)

// Standard error codes used across the WSRF stack.
const (
	CodeResourceUnknown     = "ResourceUnknownFault"
	CodeInvalidProperty     = "InvalidResourcePropertyQNameFault"
	CodeUnableToModify      = "UnableToModifyResourcePropertyFault"
	CodeInvalidModification = "InvalidModificationFault"
	CodeQueryEvaluation     = "QueryEvaluationErrorFault"
	CodeTerminationTime     = "UnableToSetTerminationTimeFault"
	CodeAddRefused          = "AddRefusedFault"
)

// New builds a SOAP fault whose detail is a wsbf:BaseFault document.
func New(soapCode, errorCode, format string, args ...interface{}) *soap.Fault {
	desc := fmt.Sprintf(format, args...)
	detail := xmlutil.New(wsrf.NSBF, "BaseFault").Add(
		xmlutil.NewText(wsrf.NSBF, "Timestamp", time.Now().UTC().Format(time.RFC3339Nano)),
		xmlutil.NewText(wsrf.NSBF, "ErrorCode", errorCode),
		xmlutil.NewText(wsrf.NSBF, "Description", desc),
	)
	return &soap.Fault{Code: soapCode, Reason: desc, Detail: detail}
}

// ResourceUnknown is the canonical "no such WS-Resource" fault.
func ResourceUnknown(collection, id string) *soap.Fault {
	return New(soap.FaultClient, CodeResourceUnknown, "no %s resource with id %q", collection, id)
}

// ErrorCode extracts the wsbf:ErrorCode from a fault, or "" when the
// fault carries no BaseFault detail — how clients discriminate
// standard failures.
func ErrorCode(f *soap.Fault) string {
	if f == nil || f.Detail == nil || f.Detail.Name.Local != "BaseFault" {
		return ""
	}
	return f.Detail.ChildText(wsrf.NSBF, "ErrorCode")
}

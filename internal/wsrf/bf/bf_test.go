package bf

import (
	"testing"

	"altstacks/internal/soap"
	"altstacks/internal/wsrf"
	"altstacks/internal/xmlutil"
)

func TestNewCarriesBaseFaultDetail(t *testing.T) {
	f := New(soap.FaultClient, CodeInvalidProperty, "unknown property %q", "cv")
	if f.Code != soap.FaultClient {
		t.Fatalf("code = %q", f.Code)
	}
	if f.Detail == nil || f.Detail.Name.Space != wsrf.NSBF || f.Detail.Name.Local != "BaseFault" {
		t.Fatalf("detail = %v", f.Detail)
	}
	if f.Detail.ChildText(wsrf.NSBF, "ErrorCode") != CodeInvalidProperty {
		t.Fatalf("error code = %q", f.Detail.ChildText(wsrf.NSBF, "ErrorCode"))
	}
	if f.Detail.ChildText(wsrf.NSBF, "Timestamp") == "" {
		t.Fatal("no timestamp")
	}
	if ErrorCode(f) != CodeInvalidProperty {
		t.Fatalf("ErrorCode() = %q", ErrorCode(f))
	}
}

func TestErrorCodeSurvivesWireTransit(t *testing.T) {
	f := ResourceUnknown("counters", "c-9")
	env := &soap.Envelope{Fault: f}
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.IsFault() {
		t.Fatal("fault lost")
	}
	if ErrorCode(parsed.Fault) != CodeResourceUnknown {
		t.Fatalf("after transit: %q", ErrorCode(parsed.Fault))
	}
}

func TestErrorCodeOnForeignFault(t *testing.T) {
	if ErrorCode(nil) != "" {
		t.Fatal("nil fault")
	}
	if ErrorCode(soap.Faultf(soap.FaultServer, "plain")) != "" {
		t.Fatal("fault without detail")
	}
	f := &soap.Fault{Code: soap.FaultServer, Reason: "x", Detail: xmlutil.New("urn:z", "Other")}
	if ErrorCode(f) != "" {
		t.Fatal("fault with foreign detail")
	}
}

// Package model is the WSRF.NET attribute-based programming model
// (paper §3.1) translated to Go: "an attribute-based programming model
// that allows service authors to easily define both the stateful
// resources and the Resource Properties used by their services."
//
// The paper's C# fragment:
//
//	[WSRFPortType(typeof(GetResourcePropertyPortType))]
//	public class MyService : ServiceSkeleton {
//	    [Resource] int v;
//	    [ResourceProperty] public int DoubleValue { get { return v * 2; } }
//	    ...
//	}
//
// becomes, with struct tags standing in for attributes and methods for
// property getters:
//
//	type MyService struct {
//	    V int `wsrf:"resource,name=v"`
//	}
//	func (s *MyService) DoubleValue() int { return s.V * 2 } // registered property
//
// Bind reflects over the struct: tagged fields are persisted as the
// WS-Resource state ("a unique value of v will be loaded, based on the
// EPR in the request headers, for each method invocation … when the
// invoked method completes, v will be saved back to the database"),
// and registered getter/setter methods become Resource Properties
// whose values "can be computed dynamically, using a portion of the
// WS-Resource state". Aggregate (in package wsrf) then plays the
// PortTypeAggregator, producing the deployable service.
//
// Supported field kinds: string, bool, all int/uint sizes, float32/64,
// and time.Time (RFC 3339), plus slices of those (multi-valued state).
package model

import (
	"encoding/xml"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"time"

	"altstacks/internal/wsa"
	"altstacks/internal/wsrf"
	"altstacks/internal/xmlutil"
)

// Binding connects a Go struct type to a wsrf.Home: it knows how to
// serialize tagged fields to the persisted state document and back.
type Binding struct {
	home   *wsrf.Home
	ns     string
	root   string
	typ    reflect.Type
	fields []boundField
}

type boundField struct {
	index    int
	name     string // element local name
	expose   bool   // also registered as a read-write resource property
	readOnly bool
}

// Bind inspects prototype (a pointer to a tagged struct) and attaches
// the binding to home. The state document root is <ns:rootLocal>.
//
// Tag grammar: `wsrf:"resource[,name=elem][,property][,readonly]"`.
//   - resource:  the field is persisted WS-Resource state.
//   - name=elem: the element local name (default: the field name).
//   - property:  additionally expose the field as a resource property.
//   - readonly:  the exposed property rejects SetResourceProperties.
func Bind(home *wsrf.Home, ns, rootLocal string, prototype interface{}) (*Binding, error) {
	t := reflect.TypeOf(prototype)
	if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		return nil, fmt.Errorf("model: prototype must be a pointer to struct, got %T", prototype)
	}
	st := t.Elem()
	b := &Binding{home: home, ns: ns, root: rootLocal, typ: st}
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		tag, ok := f.Tag.Lookup("wsrf")
		if !ok {
			continue
		}
		parts := strings.Split(tag, ",")
		if parts[0] != "resource" {
			return nil, fmt.Errorf("model: field %s: tag must start with \"resource\"", f.Name)
		}
		if !f.IsExported() {
			return nil, fmt.Errorf("model: field %s: tagged fields must be exported", f.Name)
		}
		if err := checkKind(f.Type); err != nil {
			return nil, fmt.Errorf("model: field %s: %v", f.Name, err)
		}
		bf := boundField{index: i, name: f.Name}
		for _, opt := range parts[1:] {
			switch {
			case strings.HasPrefix(opt, "name="):
				bf.name = strings.TrimPrefix(opt, "name=")
			case opt == "property":
				bf.expose = true
			case opt == "readonly":
				bf.readOnly = true
			case opt == "":
			default:
				return nil, fmt.Errorf("model: field %s: unknown tag option %q", f.Name, opt)
			}
		}
		if bf.name == "" {
			return nil, fmt.Errorf("model: field %s: empty name", f.Name)
		}
		b.fields = append(b.fields, bf)
	}
	if len(b.fields) == 0 {
		return nil, fmt.Errorf("model: %s has no wsrf:\"resource\" fields", st.Name())
	}
	// Register exposed fields as resource properties on the Home.
	for _, bf := range b.fields {
		if !bf.expose {
			continue
		}
		bf := bf
		def := wsrf.PropertyDef{
			Name: xml.Name{Space: ns, Local: bf.name},
			Get: func(r *wsrf.Resource) []*xmlutil.Element {
				inst := reflect.New(b.typ)
				if err := b.decodeInto(r.State, inst); err != nil {
					return nil
				}
				return b.fieldElements(inst, bf)
			},
		}
		if !bf.readOnly {
			def.Set = func(r *wsrf.Resource, values []*xmlutil.Element) error {
				inst := reflect.New(b.typ)
				if err := b.decodeInto(r.State, inst); err != nil {
					return err
				}
				if err := b.setField(inst, bf, values); err != nil {
					return err
				}
				doc, err := b.encode(inst)
				if err != nil {
					return err
				}
				r.State.Children = doc.Children
				return nil
			}
		}
		home.DefineProperty(def)
	}
	return b, nil
}

// DefineGetter registers a computed, read-only resource property — the
// [ResourceProperty] get accessor pattern ("the ResourceProperty value
// can be computed dynamically"). fn receives the loaded service struct.
func (b *Binding) DefineGetter(local string, fn interface{}) error {
	fv := reflect.ValueOf(fn)
	ft := fv.Type()
	if ft.Kind() != reflect.Func || ft.NumIn() != 1 || ft.NumOut() != 1 ||
		ft.In(0) != reflect.PointerTo(b.typ) {
		return fmt.Errorf("model: getter for %s must be func(*%s) T", local, b.typ.Name())
	}
	if err := checkKind(ft.Out(0)); err != nil {
		return fmt.Errorf("model: getter for %s: %v", local, err)
	}
	b.home.DefineProperty(wsrf.PropertyDef{
		Name: xml.Name{Space: b.ns, Local: local},
		Get: func(r *wsrf.Resource) []*xmlutil.Element {
			inst := reflect.New(b.typ)
			if err := b.decodeInto(r.State, inst); err != nil {
				return nil
			}
			out := fv.Call([]reflect.Value{inst})[0]
			return valueElements(b.ns, local, out)
		},
	})
	return nil
}

// Create persists a new WS-Resource initialized from the struct —
// the ServiceBase.Create() call of the programming model.
func (b *Binding) Create(instance interface{}) (wsa.EPR, error) {
	v, err := b.instanceValue(instance)
	if err != nil {
		return wsa.EPR{}, err
	}
	doc, err := b.encode(v)
	if err != nil {
		return wsa.EPR{}, err
	}
	return b.home.Create(doc)
}

// Invoke is the wrapper-service execution cycle: it loads the resource
// identified by id into a fresh instance of the bound struct, runs fn,
// and saves the (possibly mutated) fields back — "before the wrapper
// service begins execution of the appropriate method, the Resource
// specified by the EPR is loaded from the database and deserialized
// into appropriate data members … when the method invocation is
// complete, the wrapper service will serialize the members' value back"
// (§3.1). fn must have type func(*T) error.
func (b *Binding) Invoke(id string, fn interface{}) error {
	fv := reflect.ValueOf(fn)
	ft := fv.Type()
	if ft.Kind() != reflect.Func || ft.NumIn() != 1 || ft.NumOut() != 1 ||
		ft.In(0) != reflect.PointerTo(b.typ) ||
		ft.Out(0) != reflect.TypeOf((*error)(nil)).Elem() {
		return fmt.Errorf("model: Invoke fn must be func(*%s) error", b.typ.Name())
	}
	return b.home.Mutate(id, func(r *wsrf.Resource) error {
		inst := reflect.New(b.typ)
		if err := b.decodeInto(r.State, inst); err != nil {
			return err
		}
		if out := fv.Call([]reflect.Value{inst})[0]; !out.IsNil() {
			return out.Interface().(error)
		}
		doc, err := b.encode(inst)
		if err != nil {
			return err
		}
		r.State.Children = doc.Children
		return nil
	})
}

// View loads the resource into a fresh instance for read-only use.
func (b *Binding) View(id string, fn interface{}) error {
	fv := reflect.ValueOf(fn)
	ft := fv.Type()
	if ft.Kind() != reflect.Func || ft.NumIn() != 1 || ft.NumOut() != 1 ||
		ft.In(0) != reflect.PointerTo(b.typ) ||
		ft.Out(0) != reflect.TypeOf((*error)(nil)).Elem() {
		return fmt.Errorf("model: View fn must be func(*%s) error", b.typ.Name())
	}
	return b.home.View(id, func(r *wsrf.Resource) error {
		inst := reflect.New(b.typ)
		if err := b.decodeInto(r.State, inst); err != nil {
			return err
		}
		if out := fv.Call([]reflect.Value{inst})[0]; !out.IsNil() {
			return out.Interface().(error)
		}
		return nil
	})
}

// ---- struct <-> document mapping ----

func (b *Binding) instanceValue(instance interface{}) (reflect.Value, error) {
	v := reflect.ValueOf(instance)
	if !v.IsValid() || v.Type() != reflect.PointerTo(b.typ) {
		return reflect.Value{}, fmt.Errorf("model: instance must be *%s, got %T", b.typ.Name(), instance)
	}
	return v, nil
}

// encode serializes tagged fields into the state document.
func (b *Binding) encode(v reflect.Value) (*xmlutil.Element, error) {
	doc := xmlutil.New(b.ns, b.root)
	for _, bf := range b.fields {
		els := b.fieldElements(v, bf)
		doc.Add(els...)
	}
	return doc, nil
}

func (b *Binding) fieldElements(v reflect.Value, bf boundField) []*xmlutil.Element {
	fv := v.Elem().Field(bf.index)
	if fv.Kind() == reflect.Slice {
		var out []*xmlutil.Element
		for i := 0; i < fv.Len(); i++ {
			out = append(out, xmlutil.NewText(b.ns, bf.name, formatScalar(fv.Index(i))))
		}
		return out
	}
	return []*xmlutil.Element{xmlutil.NewText(b.ns, bf.name, formatScalar(fv))}
}

// decodeInto populates tagged fields from the state document.
func (b *Binding) decodeInto(doc *xmlutil.Element, v reflect.Value) error {
	for _, bf := range b.fields {
		els := doc.ChildrenNamed(b.ns, bf.name)
		fv := v.Elem().Field(bf.index)
		if fv.Kind() == reflect.Slice {
			slice := reflect.MakeSlice(fv.Type(), 0, len(els))
			for _, el := range els {
				item := reflect.New(fv.Type().Elem()).Elem()
				if err := parseScalar(el.TrimText(), item); err != nil {
					return fmt.Errorf("model: field %s: %v", bf.name, err)
				}
				slice = reflect.Append(slice, item)
			}
			fv.Set(slice)
			continue
		}
		if len(els) == 0 {
			continue // zero value
		}
		if err := parseScalar(els[0].TrimText(), fv); err != nil {
			return fmt.Errorf("model: field %s: %v", bf.name, err)
		}
	}
	return nil
}

func (b *Binding) setField(v reflect.Value, bf boundField, values []*xmlutil.Element) error {
	fv := v.Elem().Field(bf.index)
	if fv.Kind() == reflect.Slice {
		slice := reflect.MakeSlice(fv.Type(), 0, len(values))
		for _, el := range values {
			item := reflect.New(fv.Type().Elem()).Elem()
			if err := parseScalar(el.TrimText(), item); err != nil {
				return err
			}
			slice = reflect.Append(slice, item)
		}
		fv.Set(slice)
		return nil
	}
	if len(values) != 1 {
		return fmt.Errorf("property %s takes exactly one value, got %d", bf.name, len(values))
	}
	return parseScalar(values[0].TrimText(), fv)
}

var timeType = reflect.TypeOf(time.Time{})

func checkKind(t reflect.Type) error {
	if t.Kind() == reflect.Slice {
		t = t.Elem()
		if t.Kind() == reflect.Slice {
			return fmt.Errorf("nested slices unsupported")
		}
	}
	if t == timeType {
		return nil
	}
	switch t.Kind() {
	case reflect.String, reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return nil
	}
	return fmt.Errorf("unsupported kind %s", t.Kind())
}

func formatScalar(v reflect.Value) string {
	if v.Type() == timeType {
		return v.Interface().(time.Time).UTC().Format(time.RFC3339Nano)
	}
	switch v.Kind() {
	case reflect.String:
		return v.String()
	case reflect.Bool:
		return strconv.FormatBool(v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(v.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(v.Uint(), 10)
	case reflect.Float32, reflect.Float64:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	}
	return ""
}

func parseScalar(s string, v reflect.Value) error {
	if v.Type() == timeType {
		t, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return err
		}
		v.Set(reflect.ValueOf(t))
		return nil
	}
	switch v.Kind() {
	case reflect.String:
		v.SetString(s)
	case reflect.Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return err
		}
		v.SetBool(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return err
		}
		if v.OverflowInt(n) {
			return fmt.Errorf("value %s overflows %s", s, v.Kind())
		}
		v.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return err
		}
		if v.OverflowUint(n) {
			return fmt.Errorf("value %s overflows %s", s, v.Kind())
		}
		v.SetUint(n)
	case reflect.Float32, reflect.Float64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return err
		}
		v.SetFloat(f)
	default:
		return fmt.Errorf("unsupported kind %s", v.Kind())
	}
	return nil
}

func valueElements(ns, local string, v reflect.Value) []*xmlutil.Element {
	if v.Kind() == reflect.Slice {
		var out []*xmlutil.Element
		for i := 0; i < v.Len(); i++ {
			out = append(out, xmlutil.NewText(ns, local, formatScalar(v.Index(i))))
		}
		return out
	}
	return []*xmlutil.Element{xmlutil.NewText(ns, local, formatScalar(v))}
}

package model

import (
	"fmt"
	"testing"
	"time"

	"altstacks/internal/container"
	"altstacks/internal/wsrf"
	"altstacks/internal/wsrf/rp"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

const ns = "urn:modeltest"

// CounterService mirrors the paper's §3.1 example: one [Resource]
// member exposed as a read-write property, plus a computed
// DoubleValue.
type CounterService struct {
	V int `wsrf:"resource,name=cv,property"`
}

func newHome() *wsrf.Home {
	return &wsrf.Home{
		DB: xmldb.NewMemory(xmldb.CostModel{}), Collection: "counters",
		RefSpace: ns, RefLocal: "ID",
		Endpoint: func() string { return "http://local/counter" },
	}
}

func mustBind(t *testing.T, h *wsrf.Home) *Binding {
	t.Helper()
	b, err := Bind(h, ns, "CounterState", &CounterService{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DefineGetter("DoubleValue", func(s *CounterService) int { return 2 * s.V }); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCreateLoadInvokeCycle(t *testing.T) {
	h := newHome()
	b := mustBind(t, h)
	epr, err := b.Create(&CounterService{V: 5})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := epr.Property(ns, "ID")

	// The wrapper cycle: load members, run the method body, save back.
	err = b.Invoke(id, func(s *CounterService) error {
		if s.V != 5 {
			return fmt.Errorf("loaded V = %d", s.V)
		}
		s.V += 10
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var got int
	if err := b.View(id, func(s *CounterService) error { got = s.V; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("after invoke: V = %d", got)
	}
}

func TestInvokeErrorAbortsSave(t *testing.T) {
	h := newHome()
	b := mustBind(t, h)
	epr, _ := b.Create(&CounterService{V: 1})
	id, _ := epr.Property(ns, "ID")
	err := b.Invoke(id, func(s *CounterService) error {
		s.V = 999
		return fmt.Errorf("business rule violated")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	_ = b.View(id, func(s *CounterService) error {
		if s.V != 1 {
			t.Fatalf("failed invoke persisted V = %d", s.V)
		}
		return nil
	})
}

func TestTaggedFieldBecomesProperty(t *testing.T) {
	// The ,property tag registers cv on the Home; the full rp port type
	// must serve it over the wire, and the computed getter with it —
	// the end-to-end the paper's code fragment promises.
	c := container.New(container.SecurityNone)
	h := &wsrf.Home{
		DB: xmldb.NewMemory(xmldb.CostModel{}), Collection: "counters",
		RefSpace: ns, RefLocal: "ID",
		Endpoint: func() string { return c.BaseURL() + "/counter" },
	}
	b, err := Bind(h, ns, "CounterState", &CounterService{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DefineGetter("DoubleValue", func(s *CounterService) int { return 2 * s.V }); err != nil {
		t.Fatal(err)
	}
	svc := &container.Service{Path: "/counter"}
	wsrf.Aggregate(svc, &rp.PortType{Home: h})
	c.Register(svc)
	if _, err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	epr, err := b.Create(&CounterService{V: 21})
	if err != nil {
		t.Fatal(err)
	}
	cl := rp.Client{C: container.NewClient(container.ClientConfig{})}
	vals, err := cl.GetProperty(epr, "cv")
	if err != nil || len(vals) != 1 || vals[0].TrimText() != "21" {
		t.Fatalf("cv = %v, %v", vals, err)
	}
	vals, err = cl.GetProperty(epr, "DoubleValue")
	if err != nil || len(vals) != 1 || vals[0].TrimText() != "42" {
		t.Fatalf("DoubleValue = %v, %v", vals, err)
	}
	// The property is read-write: a SetResourceProperties Update lands
	// in the struct field.
	if err := cl.Update(epr, xmlutil.NewText(ns, "cv", "50")); err != nil {
		t.Fatal(err)
	}
	id, _ := epr.Property(ns, "ID")
	_ = b.View(id, func(s *CounterService) error {
		if s.V != 50 {
			t.Fatalf("after wire update: V = %d", s.V)
		}
		return nil
	})
}

func TestAllSupportedKinds(t *testing.T) {
	type Everything struct {
		S  string    `wsrf:"resource"`
		B  bool      `wsrf:"resource"`
		I  int       `wsrf:"resource"`
		I8 int8      `wsrf:"resource"`
		U  uint32    `wsrf:"resource"`
		F  float64   `wsrf:"resource"`
		T  time.Time `wsrf:"resource"`
		L  []string  `wsrf:"resource,name=item"`
		LI []int     `wsrf:"resource,name=num"`
	}
	h := &wsrf.Home{
		DB: xmldb.NewMemory(xmldb.CostModel{}), Collection: "all",
		RefSpace: ns, RefLocal: "ID",
		Endpoint: func() string { return "http://x" },
	}
	b, err := Bind(h, ns, "Everything", &Everything{})
	if err != nil {
		t.Fatal(err)
	}
	orig := &Everything{
		S: "hello", B: true, I: -7, I8: 12, U: 42, F: 2.5,
		T: time.Date(2005, 11, 15, 9, 0, 0, 0, time.UTC),
		L: []string{"a", "b"}, LI: []int{3, 1, 4},
	}
	epr, err := b.Create(orig)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := epr.Property(ns, "ID")
	err = b.View(id, func(got *Everything) error {
		if got.S != orig.S || got.B != orig.B || got.I != orig.I || got.I8 != orig.I8 ||
			got.U != orig.U || got.F != orig.F || !got.T.Equal(orig.T) {
			t.Fatalf("scalars round trip: %+v", got)
		}
		if len(got.L) != 2 || got.L[1] != "b" || len(got.LI) != 3 || got.LI[2] != 4 {
			t.Fatalf("slices round trip: %+v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBindRejectsBadPrototypes(t *testing.T) {
	h := newHome()
	cases := map[string]interface{}{
		"non-pointer":     CounterService{},
		"nil":             nil,
		"pointer to int":  new(int),
		"no tagged field": &struct{ X int }{},
		"unexported field": &struct {
			x int `wsrf:"resource"` //nolint:unused
		}{},
		"bad kind": &struct {
			M map[string]int `wsrf:"resource"`
		}{},
		"bad tag": &struct {
			X int `wsrf:"property"`
		}{},
		"unknown option": &struct {
			X int `wsrf:"resource,volatile"`
		}{},
	}
	for label, proto := range cases {
		if _, err := Bind(h, ns, "S", proto); err == nil {
			t.Errorf("%s: Bind succeeded", label)
		}
	}
}

func TestDefineGetterValidation(t *testing.T) {
	h := newHome()
	b, err := Bind(h, ns, "CounterState", &CounterService{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DefineGetter("bad1", func() int { return 0 }); err == nil {
		t.Error("no-arg getter accepted")
	}
	if err := b.DefineGetter("bad2", func(s *CounterService) map[string]int { return nil }); err == nil {
		t.Error("map-returning getter accepted")
	}
	if err := b.DefineGetter("bad3", 42); err == nil {
		t.Error("non-func getter accepted")
	}
}

func TestInvokeSignatureValidation(t *testing.T) {
	h := newHome()
	b := mustBind(t, h)
	epr, _ := b.Create(&CounterService{})
	id, _ := epr.Property(ns, "ID")
	if err := b.Invoke(id, func(s *CounterService) {}); err == nil {
		t.Error("void fn accepted")
	}
	if err := b.Invoke(id, func(x *int) error { return nil }); err == nil {
		t.Error("wrong receiver type accepted")
	}
	if err := b.View(id, "not a func"); err == nil {
		t.Error("non-func view accepted")
	}
}

func TestCreateRejectsWrongType(t *testing.T) {
	h := newHome()
	b := mustBind(t, h)
	if _, err := b.Create(&struct{}{}); err == nil {
		t.Fatal("wrong instance type accepted")
	}
	if _, err := b.Create(nil); err == nil {
		t.Fatal("nil instance accepted")
	}
}

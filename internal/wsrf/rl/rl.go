// Package rl implements the WS-ResourceLifetime port type:
// "mechanisms for destroying WS-Resources" (paper §2.1) — immediate
// destruction via Destroy and scheduled destruction via
// SetTerminationTime — plus the background sweeper that enforces
// scheduled terminations (the Lifetime Management box of Figure 1).
//
// Grid-in-a-Box leans on this: reservations are created with
// "termination time … set to the current time plus an administrator
// specified delta", and claiming a reservation lengthens it (paper
// §4.2.1). Unreserve-on-expiry is why Figure 6 reports no time for
// the WSRF "Unreserve Resource" operation — it is automatic.
package rl

import (
	"encoding/xml"
	"errors"
	"sync"
	"time"

	"altstacks/internal/container"
	"altstacks/internal/soap"
	"altstacks/internal/wsa"
	"altstacks/internal/wsrf"
	"altstacks/internal/wsrf/bf"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

// Action URIs for the port type.
const (
	ActionDestroy            = wsrf.NSRL + "/Destroy"
	ActionSetTerminationTime = wsrf.NSRL + "/SetTerminationTime"
)

// Infinity is the wire representation of "never terminate".
const Infinity = "infinity"

// PortType serves WS-ResourceLifetime operations for one Home.
type PortType struct {
	Home *wsrf.Home
	// Now is the clock, overridable in tests; nil means time.Now.
	Now func() time.Time
}

// NewPortType builds the port type and registers the spec-defined
// CurrentTime and TerminationTime resource properties on the Home —
// importing the port type exports "both their methods and their
// ResourceProperties" (paper §3.1).
func NewPortType(home *wsrf.Home) *PortType {
	p := &PortType{Home: home}
	home.DefineProperty(wsrf.PropertyDef{
		Name: xml.Name{Space: wsrf.NSRL, Local: "CurrentTime"},
		Get: func(*wsrf.Resource) []*xmlutil.Element {
			return []*xmlutil.Element{xmlutil.NewText(wsrf.NSRL, "CurrentTime", p.now().UTC().Format(time.RFC3339Nano))}
		},
	})
	home.DefineProperty(wsrf.PropertyDef{
		Name: xml.Name{Space: wsrf.NSRL, Local: "TerminationTime"},
		Get: func(r *wsrf.Resource) []*xmlutil.Element {
			v := Infinity
			if !r.Termination.IsZero() {
				v = r.Termination.UTC().Format(time.RFC3339Nano)
			}
			return []*xmlutil.Element{xmlutil.NewText(wsrf.NSRL, "TerminationTime", v)}
		},
	})
	return p
}

func (p *PortType) now() time.Time {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now()
}

// Actions implements wsrf.PortType.
func (p *PortType) Actions() map[string]container.ActionFunc {
	return map[string]container.ActionFunc{
		ActionDestroy:            p.destroy,
		ActionSetTerminationTime: p.setTerminationTime,
	}
}

func (p *PortType) destroy(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := p.Home.ResourceID(ctx.Envelope)
	if err != nil {
		return nil, err
	}
	if err := p.Home.DestroyContext(ctx.Context, id); err != nil {
		if errors.Is(err, xmldb.ErrNotFound) {
			return nil, bf.ResourceUnknown(p.Home.Collection, id)
		}
		return nil, err
	}
	return xmlutil.New(wsrf.NSRL, "DestroyResponse"), nil
}

func (p *PortType) setTerminationTime(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := p.Home.ResourceID(ctx.Envelope)
	if err != nil {
		return nil, err
	}
	requested := ctx.Envelope.Body.ChildText(wsrf.NSRL, "RequestedTerminationTime")
	var when time.Time
	if requested != "" && requested != Infinity {
		when, err = time.Parse(time.RFC3339Nano, requested)
		if err != nil {
			return nil, bf.New(soap.FaultClient, bf.CodeTerminationTime, "bad RequestedTerminationTime %q: %v", requested, err)
		}
	}
	err = p.Home.MutateContext(ctx.Context, id, func(r *wsrf.Resource) error {
		r.Termination = when
		return nil
	})
	if err != nil {
		if errors.Is(err, xmldb.ErrNotFound) {
			return nil, bf.ResourceUnknown(p.Home.Collection, id)
		}
		return nil, err
	}
	newTT := Infinity
	if !when.IsZero() {
		newTT = when.UTC().Format(time.RFC3339Nano)
	}
	return xmlutil.New(wsrf.NSRL, "SetTerminationTimeResponse").Add(
		xmlutil.NewText(wsrf.NSRL, "NewTerminationTime", newTT),
		xmlutil.NewText(wsrf.NSRL, "CurrentTime", p.now().UTC().Format(time.RFC3339Nano)),
	), nil
}

// Sweeper destroys resources whose scheduled termination has passed.
type Sweeper struct {
	Interval time.Duration
	// Now is the clock, overridable in tests.
	Now func() time.Time

	mu    sync.Mutex
	homes []*wsrf.Home
	stop  chan struct{}
	done  chan struct{}
}

// NewSweeper returns a sweeper with the given scan interval.
func NewSweeper(interval time.Duration) *Sweeper {
	return &Sweeper{Interval: interval}
}

// Watch adds a Home to the sweep set.
func (s *Sweeper) Watch(h *wsrf.Home) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.homes = append(s.homes, h)
}

// SweepOnce destroys every expired resource across watched homes and
// returns how many were destroyed.
func (s *Sweeper) SweepOnce() int {
	now := time.Now()
	if s.Now != nil {
		now = s.Now()
	}
	s.mu.Lock()
	homes := append([]*wsrf.Home(nil), s.homes...)
	s.mu.Unlock()
	n := 0
	for _, h := range homes {
		ids, err := h.Expired(now)
		if err != nil {
			continue
		}
		for _, id := range ids {
			if err := h.Destroy(id); err == nil {
				n++
			}
		}
	}
	return n
}

// Start launches the background sweep loop.
func (s *Sweeper) Start() {
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(s.Interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.SweepOnce()
			}
		}
	}()
}

// Stop halts the sweep loop and waits for it to exit.
func (s *Sweeper) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Client issues WS-ResourceLifetime requests.
type Client struct {
	C *container.Client
}

// Destroy destroys the resource immediately.
func (c *Client) Destroy(epr wsa.EPR) error {
	_, err := c.C.Call(epr, ActionDestroy, xmlutil.New(wsrf.NSRL, "Destroy"))
	return err
}

// SetTerminationTime schedules termination; the zero time means never.
func (c *Client) SetTerminationTime(epr wsa.EPR, when time.Time) error {
	v := Infinity
	if !when.IsZero() {
		v = when.UTC().Format(time.RFC3339Nano)
	}
	body := xmlutil.New(wsrf.NSRL, "SetTerminationTime").Add(
		xmlutil.NewText(wsrf.NSRL, "RequestedTerminationTime", v))
	_, err := c.C.Call(epr, ActionSetTerminationTime, body)
	return err
}

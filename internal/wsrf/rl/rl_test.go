package rl

import (
	"testing"
	"time"

	"altstacks/internal/container"
	"altstacks/internal/soap"
	"altstacks/internal/wsa"
	"altstacks/internal/wsrf"
	"altstacks/internal/wsrf/bf"
	"altstacks/internal/wsrf/rp"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

const nsR = "urn:reservation"

func startReservations(t *testing.T) (*wsrf.Home, *Client, *rp.Client, func() wsa.EPR) {
	t.Helper()
	c := container.New(container.SecurityNone)
	home := &wsrf.Home{
		DB:         xmldb.NewMemory(xmldb.CostModel{}),
		Collection: "reservations",
		RefSpace:   nsR,
		RefLocal:   "ReservationID",
		Endpoint:   func() string { return c.BaseURL() + "/reservation" },
	}
	svc := &container.Service{Path: "/reservation"}
	wsrf.Aggregate(svc, NewPortType(home), &rp.PortType{Home: home})
	c.Register(svc)
	if _, err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	base := container.NewClient(container.ClientConfig{})
	create := func() wsa.EPR {
		epr, err := home.Create(xmlutil.New(nsR, "Reservation"))
		if err != nil {
			t.Fatal(err)
		}
		return epr
	}
	return home, &Client{C: base}, &rp.Client{C: base}, create
}

func TestDestroy(t *testing.T) {
	home, cl, _, create := startReservations(t)
	epr := create()
	if err := cl.Destroy(epr); err != nil {
		t.Fatal(err)
	}
	id, _ := epr.Property(nsR, "ReservationID")
	if ok, _ := home.Exists(id); ok {
		t.Fatal("resource survived Destroy")
	}
	// Destroying again faults with ResourceUnknown.
	err := cl.Destroy(epr)
	f, ok := err.(*soap.Fault)
	if !ok || bf.ErrorCode(f) != bf.CodeResourceUnknown {
		t.Fatalf("second destroy: %v", err)
	}
}

func TestSetTerminationTimeAndProperties(t *testing.T) {
	home, cl, rpc, create := startReservations(t)
	epr := create()
	when := time.Now().Add(4 * time.Hour).UTC().Truncate(time.Second)
	if err := cl.SetTerminationTime(epr, when); err != nil {
		t.Fatal(err)
	}
	id, _ := epr.Property(nsR, "ReservationID")
	r, err := home.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Termination.Equal(when) {
		t.Fatalf("termination = %v, want %v", r.Termination, when)
	}
	// The imported port type exports TerminationTime/CurrentTime as
	// resource properties (paper §3.1).
	vals, err := rpc.GetProperty(epr, "TerminationTime")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].TrimText() != when.Format(time.RFC3339Nano) {
		t.Fatalf("TerminationTime property = %v", vals)
	}
	vals, err = rpc.GetProperty(epr, "CurrentTime")
	if err != nil || len(vals) != 1 {
		t.Fatalf("CurrentTime property = %v, %v", vals, err)
	}
}

func TestSetTerminationInfinity(t *testing.T) {
	home, cl, rpc, create := startReservations(t)
	epr := create()
	if err := cl.SetTerminationTime(epr, time.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	// "The current Grid-in-a-box sets the termination time to infinity"
	// when a reservation is claimed (paper §4.2.1).
	if err := cl.SetTerminationTime(epr, time.Time{}); err != nil {
		t.Fatal(err)
	}
	id, _ := epr.Property(nsR, "ReservationID")
	r, _ := home.Load(id)
	if !r.Termination.IsZero() {
		t.Fatalf("termination = %v, want infinity", r.Termination)
	}
	vals, _ := rpc.GetProperty(epr, "TerminationTime")
	if len(vals) != 1 || vals[0].TrimText() != Infinity {
		t.Fatalf("TerminationTime = %v", vals)
	}
}

func TestSetTerminationBadTime(t *testing.T) {
	_, cl, _, create := startReservations(t)
	epr := create()
	body := xmlutil.New(wsrf.NSRL, "SetTerminationTime").Add(
		xmlutil.NewText(wsrf.NSRL, "RequestedTerminationTime", "tomorrow-ish"))
	_, err := cl.C.Call(epr, ActionSetTerminationTime, body)
	f, ok := err.(*soap.Fault)
	if !ok || bf.ErrorCode(f) != bf.CodeTerminationTime {
		t.Fatalf("err = %v", err)
	}
}

func TestSweeperDestroysExpired(t *testing.T) {
	home, cl, _, create := startReservations(t)
	expired := create()
	live := create()
	if err := cl.SetTerminationTime(expired, time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetTerminationTime(live, time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	s := NewSweeper(time.Hour)
	s.Watch(home)
	if n := s.SweepOnce(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	expID, _ := expired.Property(nsR, "ReservationID")
	liveID, _ := live.Property(nsR, "ReservationID")
	if ok, _ := home.Exists(expID); ok {
		t.Fatal("expired reservation survived sweep")
	}
	if ok, _ := home.Exists(liveID); !ok {
		t.Fatal("live reservation was swept")
	}
}

func TestSweeperBackgroundLoop(t *testing.T) {
	home, cl, _, create := startReservations(t)
	epr := create()
	if err := cl.SetTerminationTime(epr, time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	s := NewSweeper(5 * time.Millisecond)
	s.Watch(home)
	s.Start()
	defer s.Stop()
	id, _ := epr.Property(nsR, "ReservationID")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if ok, _ := home.Exists(id); !ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("background sweeper never destroyed the expired resource")
}

func TestSweeperStopIdempotent(t *testing.T) {
	s := NewSweeper(time.Millisecond)
	s.Start()
	s.Start() // second Start is a no-op
	s.Stop()
	s.Stop() // second Stop is a no-op
}

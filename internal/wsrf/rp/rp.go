// Package rp implements the WS-ResourceProperties port type: "how
// WS-Resources are described by XML documents that can be queried and
// modified" (paper §2.1). It supplies the four spec operations —
// GetResourceProperty, GetMultipleResourceProperties,
// SetResourceProperties (Insert/Update/Delete components), and
// QueryResourceProperties (XPath dialect) — as an importable port
// type, plus the matching client calls.
package rp

import (
	"errors"
	"fmt"
	"strings"

	"altstacks/internal/container"
	"altstacks/internal/soap"
	"altstacks/internal/wsa"
	"altstacks/internal/wsrf"
	"altstacks/internal/wsrf/bf"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
	"altstacks/internal/xpathlite"
)

// Action URIs for the port type.
const (
	ActionGet         = wsrf.NSRP + "/GetResourceProperty"
	ActionGetDocument = wsrf.NSRP + "/GetResourcePropertyDocument"
	ActionGetMultiple = wsrf.NSRP + "/GetMultipleResourceProperties"
	ActionSet         = wsrf.NSRP + "/SetResourceProperties"
	ActionQuery       = wsrf.NSRP + "/QueryResourceProperties"
)

// DialectXPath identifies the query dialect QueryResourceProperties
// accepts (the paper's WSRF.NET supported XPath and XQuery; this
// implementation supports the XPath subset).
const DialectXPath = "http://www.w3.org/TR/1999/REC-xpath-19991116"

// PortType serves the WS-ResourceProperties operations for one Home.
type PortType struct {
	Home *wsrf.Home
}

// Actions implements wsrf.PortType.
func (p *PortType) Actions() map[string]container.ActionFunc {
	return map[string]container.ActionFunc{
		ActionGet:         p.getProperty,
		ActionGetDocument: p.getDocument,
		ActionGetMultiple: p.getMultiple,
		ActionSet:         p.setProperties,
		ActionQuery:       p.query,
	}
}

// localName strips an optional prefix from a QName-valued text node.
func localName(qname string) string {
	qname = strings.TrimSpace(qname)
	if i := strings.LastIndexByte(qname, ':'); i >= 0 {
		return qname[i+1:]
	}
	return qname
}

func (p *PortType) load(ctx *container.Ctx) (string, error) {
	id, err := p.Home.ResourceID(ctx.Envelope)
	if err != nil {
		return "", err
	}
	return id, nil
}

func mapNotFound(err error, collection, id string) error {
	if errors.Is(err, xmldb.ErrNotFound) {
		return bf.ResourceUnknown(collection, id)
	}
	return err
}

func (p *PortType) getProperty(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := p.load(ctx)
	if err != nil {
		return nil, err
	}
	want := localName(ctx.Envelope.Body.TrimText())
	if want == "" {
		return nil, bf.New(soap.FaultClient, bf.CodeInvalidProperty, "GetResourceProperty names no property")
	}
	def, ok := p.Home.Property("", want)
	if !ok {
		return nil, bf.New(soap.FaultClient, bf.CodeInvalidProperty, "unknown resource property %q", want)
	}
	resp := xmlutil.New(wsrf.NSRP, "GetResourcePropertyResponse")
	err = p.Home.ViewContext(ctx.Context, id, func(r *wsrf.Resource) error {
		for _, el := range def.Get(r) {
			resp.Add(el)
		}
		return nil
	})
	if err != nil {
		return nil, mapNotFound(err, p.Home.Collection, id)
	}
	return resp, nil
}

// getDocument returns the entire resource property document — the
// whole "view or projection of the state of the WS-Resource".
func (p *PortType) getDocument(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := p.load(ctx)
	if err != nil {
		return nil, err
	}
	resp := xmlutil.New(wsrf.NSRP, "GetResourcePropertyDocumentResponse")
	err = p.Home.ViewContext(ctx.Context, id, func(r *wsrf.Resource) error {
		resp.Add(p.Home.PropertyDocument(r))
		return nil
	})
	if err != nil {
		return nil, mapNotFound(err, p.Home.Collection, id)
	}
	return resp, nil
}

func (p *PortType) getMultiple(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := p.load(ctx)
	if err != nil {
		return nil, err
	}
	var defs []wsrf.PropertyDef
	for _, c := range ctx.Envelope.Body.ChildrenNamed(wsrf.NSRP, "ResourceProperty") {
		name := localName(c.TrimText())
		def, ok := p.Home.Property("", name)
		if !ok {
			return nil, bf.New(soap.FaultClient, bf.CodeInvalidProperty, "unknown resource property %q", name)
		}
		defs = append(defs, def)
	}
	resp := xmlutil.New(wsrf.NSRP, "GetMultipleResourcePropertiesResponse")
	err = p.Home.ViewContext(ctx.Context, id, func(r *wsrf.Resource) error {
		for _, def := range defs {
			for _, el := range def.Get(r) {
				resp.Add(el)
			}
		}
		return nil
	})
	if err != nil {
		return nil, mapNotFound(err, p.Home.Collection, id)
	}
	return resp, nil
}

func (p *PortType) setProperties(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := p.load(ctx)
	if err != nil {
		return nil, err
	}
	err = p.Home.MutateContext(ctx.Context, id, func(r *wsrf.Resource) error {
		for _, comp := range ctx.Envelope.Body.Children {
			if comp.Name.Space != wsrf.NSRP {
				continue
			}
			switch comp.Name.Local {
			case "Update":
				if err := p.update(r, comp.Children); err != nil {
					return err
				}
			case "Insert":
				if err := p.insert(r, comp.Children); err != nil {
					return err
				}
			case "Delete":
				name := localName(comp.AttrValue("", "ResourceProperty"))
				def, ok := p.Home.Property("", name)
				if !ok {
					return bf.New(soap.FaultClient, bf.CodeInvalidProperty, "unknown resource property %q", name)
				}
				if def.Set == nil {
					return bf.New(soap.FaultClient, bf.CodeUnableToModify, "property %q is read-only", name)
				}
				if err := def.Set(r, nil); err != nil {
					return bf.New(soap.FaultClient, bf.CodeInvalidModification, "delete %s: %v", name, err)
				}
			default:
				return bf.New(soap.FaultClient, bf.CodeInvalidModification, "unknown SetResourceProperties component %q", comp.Name.Local)
			}
		}
		return nil
	})
	if err != nil {
		return nil, mapNotFound(err, p.Home.Collection, id)
	}
	return xmlutil.New(wsrf.NSRP, "SetResourcePropertiesResponse"), nil
}

// update groups the replacement values by property name and replaces
// each named property's full value list.
func (p *PortType) update(r *wsrf.Resource, values []*xmlutil.Element) error {
	groups := map[string][]*xmlutil.Element{}
	var order []string
	for _, v := range values {
		key := v.Name.Local
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], v)
	}
	for _, name := range order {
		def, ok := p.Home.Property("", name)
		if !ok {
			return bf.New(soap.FaultClient, bf.CodeInvalidProperty, "unknown resource property %q", name)
		}
		if def.Set == nil {
			return bf.New(soap.FaultClient, bf.CodeUnableToModify, "property %q is read-only", name)
		}
		if err := def.Set(r, groups[name]); err != nil {
			return bf.New(soap.FaultClient, bf.CodeInvalidModification, "update %s: %v", name, err)
		}
	}
	return nil
}

// insert appends values to each named property's existing list.
func (p *PortType) insert(r *wsrf.Resource, values []*xmlutil.Element) error {
	for _, v := range values {
		def, ok := p.Home.Property("", v.Name.Local)
		if !ok {
			return bf.New(soap.FaultClient, bf.CodeInvalidProperty, "unknown resource property %q", v.Name.Local)
		}
		if def.Set == nil {
			return bf.New(soap.FaultClient, bf.CodeUnableToModify, "property %q is read-only", v.Name.Local)
		}
		merged := append(def.Get(r), v)
		if err := def.Set(r, merged); err != nil {
			return bf.New(soap.FaultClient, bf.CodeInvalidModification, "insert %s: %v", v.Name.Local, err)
		}
	}
	return nil
}

func (p *PortType) query(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := p.load(ctx)
	if err != nil {
		return nil, err
	}
	exprEl := ctx.Envelope.Body.Child(wsrf.NSRP, "QueryExpression")
	if exprEl == nil {
		return nil, bf.New(soap.FaultClient, bf.CodeQueryEvaluation, "missing QueryExpression")
	}
	if d := exprEl.AttrValue("", "Dialect"); d != "" && d != DialectXPath {
		return nil, bf.New(soap.FaultClient, bf.CodeQueryEvaluation, "unsupported query dialect %q", d)
	}
	path, err := xpathlite.Compile(exprEl.TrimText())
	if err != nil {
		return nil, bf.New(soap.FaultClient, bf.CodeQueryEvaluation, "bad query: %v", err)
	}
	resp := xmlutil.New(wsrf.NSRP, "QueryResourcePropertiesResponse")
	err = p.Home.ViewContext(ctx.Context, id, func(r *wsrf.Resource) error {
		doc := p.Home.PropertyDocument(r)
		for _, n := range path.Select(doc) {
			switch n.Kind {
			case xpathlite.KindElement:
				resp.Add(n.El.Clone())
			case xpathlite.KindText, xpathlite.KindAttr:
				resp.Add(xmlutil.NewText(wsrf.NSRP, "Value", n.Value))
			}
		}
		return nil
	})
	if err != nil {
		return nil, mapNotFound(err, p.Home.Collection, id)
	}
	return resp, nil
}

// Client issues WS-ResourceProperties requests against a WS-Resource.
type Client struct {
	C *container.Client
}

// GetProperty fetches one property's values.
func (c *Client) GetProperty(epr wsa.EPR, property string) ([]*xmlutil.Element, error) {
	body := xmlutil.NewText(wsrf.NSRP, "GetResourceProperty", property)
	resp, err := c.C.Call(epr, ActionGet, body)
	if err != nil {
		return nil, err
	}
	return resp.Children, nil
}

// GetDocument fetches the full resource property document.
func (c *Client) GetDocument(epr wsa.EPR) (*xmlutil.Element, error) {
	resp, err := c.C.Call(epr, ActionGetDocument, xmlutil.New(wsrf.NSRP, "GetResourcePropertyDocument"))
	if err != nil {
		return nil, err
	}
	doc := resp.Child(wsrf.NSRP, "Properties")
	if doc == nil {
		return nil, fmt.Errorf("rp: response carries no Properties document")
	}
	return doc, nil
}

// GetMultiple fetches several properties in one exchange.
func (c *Client) GetMultiple(epr wsa.EPR, properties ...string) ([]*xmlutil.Element, error) {
	body := xmlutil.New(wsrf.NSRP, "GetMultipleResourceProperties")
	for _, p := range properties {
		body.Add(xmlutil.NewText(wsrf.NSRP, "ResourceProperty", p))
	}
	resp, err := c.C.Call(epr, ActionGetMultiple, body)
	if err != nil {
		return nil, err
	}
	return resp.Children, nil
}

// Update replaces the full value list of the properties carried in values.
func (c *Client) Update(epr wsa.EPR, values ...*xmlutil.Element) error {
	body := xmlutil.New(wsrf.NSRP, "SetResourceProperties").Add(
		xmlutil.New(wsrf.NSRP, "Update").Add(values...))
	_, err := c.C.Call(epr, ActionSet, body)
	return err
}

// Insert appends property values.
func (c *Client) Insert(epr wsa.EPR, values ...*xmlutil.Element) error {
	body := xmlutil.New(wsrf.NSRP, "SetResourceProperties").Add(
		xmlutil.New(wsrf.NSRP, "Insert").Add(values...))
	_, err := c.C.Call(epr, ActionSet, body)
	return err
}

// Delete removes all values of the named property.
func (c *Client) Delete(epr wsa.EPR, property string) error {
	body := xmlutil.New(wsrf.NSRP, "SetResourceProperties").Add(
		xmlutil.New(wsrf.NSRP, "Delete").SetAttr("", "ResourceProperty", property))
	_, err := c.C.Call(epr, ActionSet, body)
	return err
}

// Query evaluates an XPath expression over the resource property document.
func (c *Client) Query(epr wsa.EPR, expr string) ([]*xmlutil.Element, error) {
	body := xmlutil.New(wsrf.NSRP, "QueryResourceProperties").Add(
		xmlutil.NewText(wsrf.NSRP, "QueryExpression", expr).SetAttr("", "Dialect", DialectXPath))
	resp, err := c.C.Call(epr, ActionQuery, body)
	if err != nil {
		return nil, err
	}
	return resp.Children, nil
}

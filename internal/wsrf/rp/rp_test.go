package rp

import (
	"encoding/xml"
	"fmt"
	"strings"
	"testing"

	"altstacks/internal/container"
	"altstacks/internal/soap"
	"altstacks/internal/wsa"
	"altstacks/internal/wsrf"
	"altstacks/internal/wsrf/bf"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

const nsC = "urn:counter"

// startCounter wires a WSRF counter service (the paper's hello-world
// resource shape) into a live container and returns the client pieces.
func startCounter(t *testing.T) (*wsrf.Home, *Client, func(initial int) wsa.EPR) {
	t.Helper()
	c := container.New(container.SecurityNone)
	home := &wsrf.Home{
		DB:           xmldb.NewMemory(xmldb.CostModel{}),
		Collection:   "counters",
		RefSpace:     nsC,
		RefLocal:     "CounterID",
		Endpoint:     func() string { return c.BaseURL() + "/counter" },
		CacheEnabled: true,
	}
	home.DefineProperty(wsrf.StateChildProperty(nsC, "cv"))
	home.DefineProperty(wsrf.PropertyDef{
		Name: xml.Name{Space: nsC, Local: "DoubleValue"},
		Get: func(r *wsrf.Resource) []*xmlutil.Element {
			var v int
			fmt.Sscanf(r.State.ChildText(nsC, "cv"), "%d", &v)
			return []*xmlutil.Element{xmlutil.NewText(nsC, "DoubleValue", fmt.Sprint(2*v))}
		},
	})
	svc := &container.Service{Path: "/counter"}
	wsrf.Aggregate(svc, &PortType{Home: home})
	c.Register(svc)
	if _, err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl := &Client{C: container.NewClient(container.ClientConfig{})}
	create := func(initial int) wsa.EPR {
		state := xmlutil.New(nsC, "CounterState").Add(xmlutil.NewText(nsC, "cv", fmt.Sprint(initial)))
		epr, err := home.Create(state)
		if err != nil {
			t.Fatal(err)
		}
		return epr
	}
	return home, cl, create
}

func TestGetResourceProperty(t *testing.T) {
	_, cl, create := startCounter(t)
	epr := create(5)
	vals, err := cl.GetProperty(epr, "cv")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].TrimText() != "5" {
		t.Fatalf("cv = %v", vals)
	}
}

func TestComputedProperty(t *testing.T) {
	// The paper's DoubleValue example: a [ResourceProperty] computed
	// from [Resource] state.
	_, cl, create := startCounter(t)
	epr := create(21)
	vals, err := cl.GetProperty(epr, "DoubleValue")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].TrimText() != "42" {
		t.Fatalf("DoubleValue = %v", vals)
	}
}

func TestGetPropertyWithPrefixedQName(t *testing.T) {
	_, cl, create := startCounter(t)
	epr := create(9)
	vals, err := cl.GetProperty(epr, "tns:cv")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0].TrimText() != "9" {
		t.Fatalf("prefixed lookup = %v", vals)
	}
}

func TestGetUnknownPropertyFaults(t *testing.T) {
	_, cl, create := startCounter(t)
	epr := create(0)
	_, err := cl.GetProperty(epr, "nope")
	f, ok := err.(*soap.Fault)
	if !ok || bf.ErrorCode(f) != bf.CodeInvalidProperty {
		t.Fatalf("err = %v", err)
	}
}

func TestGetMultiple(t *testing.T) {
	_, cl, create := startCounter(t)
	epr := create(10)
	vals, err := cl.GetMultiple(epr, "cv", "DoubleValue")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0].TrimText() != "10" || vals[1].TrimText() != "20" {
		t.Fatalf("multiple = %v", vals)
	}
}

func TestSetUpdate(t *testing.T) {
	_, cl, create := startCounter(t)
	epr := create(1)
	if err := cl.Update(epr, xmlutil.NewText(nsC, "cv", "99")); err != nil {
		t.Fatal(err)
	}
	vals, _ := cl.GetProperty(epr, "cv")
	if len(vals) != 1 || vals[0].TrimText() != "99" {
		t.Fatalf("after update: %v", vals)
	}
}

func TestSetInsertAndDelete(t *testing.T) {
	_, cl, create := startCounter(t)
	epr := create(1)
	if err := cl.Insert(epr, xmlutil.NewText(nsC, "cv", "2")); err != nil {
		t.Fatal(err)
	}
	vals, _ := cl.GetProperty(epr, "cv")
	if len(vals) != 2 {
		t.Fatalf("after insert: %v", vals)
	}
	if err := cl.Delete(epr, "cv"); err != nil {
		t.Fatal(err)
	}
	vals, _ = cl.GetProperty(epr, "cv")
	if len(vals) != 0 {
		t.Fatalf("after delete: %v", vals)
	}
}

func TestSetReadOnlyPropertyFaults(t *testing.T) {
	_, cl, create := startCounter(t)
	epr := create(1)
	err := cl.Update(epr, xmlutil.NewText(nsC, "DoubleValue", "4"))
	f, ok := err.(*soap.Fault)
	if !ok || bf.ErrorCode(f) != bf.CodeUnableToModify {
		t.Fatalf("err = %v", err)
	}
}

func TestQueryResourceProperties(t *testing.T) {
	_, cl, create := startCounter(t)
	epr := create(7)
	got, err := cl.Query(epr, "/Properties/cv[.='7']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TrimText() != "7" {
		t.Fatalf("query hit = %v", got)
	}
	got, err = cl.Query(epr, "/Properties/cv[.='8']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("query should miss, got %v", got)
	}
}

func TestQueryBadDialect(t *testing.T) {
	_, cl, create := startCounter(t)
	epr := create(0)
	body := xmlutil.New(wsrf.NSRP, "QueryResourceProperties").Add(
		xmlutil.NewText(wsrf.NSRP, "QueryExpression", "/Properties").
			SetAttr("", "Dialect", "urn:xquery"))
	_, err := cl.C.Call(epr, ActionQuery, body)
	f, ok := err.(*soap.Fault)
	if !ok || bf.ErrorCode(f) != bf.CodeQueryEvaluation {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownResourceFaults(t *testing.T) {
	home, cl, _ := startCounter(t)
	epr := home.EPRFor("no-such-id")
	_, err := cl.GetProperty(epr, "cv")
	f, ok := err.(*soap.Fault)
	if !ok || bf.ErrorCode(f) != bf.CodeResourceUnknown {
		t.Fatalf("err = %v", err)
	}
}

func TestMissingReferencePropertyFaults(t *testing.T) {
	home, cl, _ := startCounter(t)
	// An EPR with no resource id reference property at all.
	bare := wsa.NewEPR(home.Endpoint())
	_, err := cl.GetProperty(bare, "cv")
	if err == nil || !strings.Contains(err.Error(), "reference property") {
		t.Fatalf("err = %v", err)
	}
}

func TestGetResourcePropertyDocument(t *testing.T) {
	_, cl, create := startCounter(t)
	epr := create(6)
	doc, err := cl.GetDocument(epr)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name.Local != "Properties" {
		t.Fatalf("doc = %s", doc)
	}
	if doc.ChildText(nsC, "cv") != "6" || doc.ChildText(nsC, "DoubleValue") != "12" {
		t.Fatalf("property document = %s", doc)
	}
}

func TestGetDocumentUnknownResource(t *testing.T) {
	home, cl, _ := startCounter(t)
	_, err := cl.GetDocument(home.EPRFor("ghost"))
	f, ok := err.(*soap.Fault)
	if !ok || bf.ErrorCode(f) != bf.CodeResourceUnknown {
		t.Fatalf("err = %v", err)
	}
}

// Package sg implements the WS-ServiceGroup port type: "how
// collections of Web services and/or WS-Resources can be represented
// and managed" (paper §2.1). A ServiceGroup is itself a WS-Resource
// whose state is its entry list; members are added with the Add
// operation and each entry records the member's EPR plus an optional
// content document that must satisfy the group's content rules.
//
// Grid-in-a-Box's ResourceAllocationService uses a service group to
// track the ExecService/DataService pairs registered in the VO.
package sg

import (
	"errors"
	"fmt"

	"altstacks/internal/container"
	"altstacks/internal/soap"
	"altstacks/internal/uuid"
	"altstacks/internal/wsa"
	"altstacks/internal/wsrf"
	"altstacks/internal/wsrf/bf"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

// Action URIs for the port type.
const (
	ActionAdd    = wsrf.NSSG + "/Add"
	ActionRemove = wsrf.NSSG + "/Remove"
)

// PortType serves ServiceGroup operations for one Home whose resources
// are groups.
type PortType struct {
	Home *wsrf.Home
	// ContentRule, when non-empty, lists the local names allowed as
	// entry content roots; Add faults on anything else.
	ContentRule []string
}

// NewGroupState returns the initial state document for a fresh group;
// pass it to Home.Create.
func NewGroupState() *xmlutil.Element { return xmlutil.New(wsrf.NSSG, "ServiceGroup") }

// Actions implements wsrf.PortType.
func (p *PortType) Actions() map[string]container.ActionFunc {
	return map[string]container.ActionFunc{
		ActionAdd:    p.add,
		ActionRemove: p.remove,
	}
}

func (p *PortType) add(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := p.Home.ResourceID(ctx.Envelope)
	if err != nil {
		return nil, err
	}
	memberEl := ctx.Envelope.Body.Child(wsrf.NSSG, "MemberEPR")
	if memberEl == nil || len(memberEl.Children) == 0 {
		return nil, bf.New(soap.FaultClient, bf.CodeAddRefused, "Add carries no MemberEPR")
	}
	member, err := wsa.ParseEPR(memberEl.Children[0])
	if err != nil {
		return nil, bf.New(soap.FaultClient, bf.CodeAddRefused, "bad MemberEPR: %v", err)
	}
	var content *xmlutil.Element
	if c := ctx.Envelope.Body.Child(wsrf.NSSG, "Content"); c != nil && len(c.Children) > 0 {
		content = c.Children[0]
		if len(p.ContentRule) > 0 && !p.allowed(content.Name.Local) {
			return nil, bf.New(soap.FaultClient, bf.CodeAddRefused,
				"content %q violates the group's content rules %v", content.Name.Local, p.ContentRule)
		}
	}
	entryID := uuid.NewString()
	entry := xmlutil.New(wsrf.NSSG, "Entry").SetAttr("", "id", entryID)
	entry.Add(member.Element(wsrf.NSSG, "MemberServiceEPR"))
	if content != nil {
		entry.Add(xmlutil.New(wsrf.NSSG, "Content").Add(content.Clone()))
	}
	err = p.Home.MutateContext(ctx.Context, id, func(r *wsrf.Resource) error {
		r.State.Add(entry)
		return nil
	})
	if err != nil {
		if errors.Is(err, xmldb.ErrNotFound) {
			return nil, bf.ResourceUnknown(p.Home.Collection, id)
		}
		return nil, err
	}
	return xmlutil.New(wsrf.NSSG, "AddResponse").Add(
		xmlutil.NewText(wsrf.NSSG, "EntryID", entryID)), nil
}

func (p *PortType) remove(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := p.Home.ResourceID(ctx.Envelope)
	if err != nil {
		return nil, err
	}
	entryID := ctx.Envelope.Body.ChildText(wsrf.NSSG, "EntryID")
	if entryID == "" {
		return nil, bf.New(soap.FaultClient, bf.CodeAddRefused, "Remove names no EntryID")
	}
	found := false
	err = p.Home.MutateContext(ctx.Context, id, func(r *wsrf.Resource) error {
		kept := r.State.Children[:0]
		for _, c := range r.State.Children {
			if c.Name.Space == wsrf.NSSG && c.Name.Local == "Entry" && c.AttrValue("", "id") == entryID {
				found = true
				continue
			}
			kept = append(kept, c)
		}
		r.State.Children = kept
		return nil
	})
	if err != nil {
		if errors.Is(err, xmldb.ErrNotFound) {
			return nil, bf.ResourceUnknown(p.Home.Collection, id)
		}
		return nil, err
	}
	if !found {
		return nil, bf.New(soap.FaultClient, bf.CodeResourceUnknown, "no entry %q in group %s", entryID, id)
	}
	return xmlutil.New(wsrf.NSSG, "RemoveResponse"), nil
}

func (p *PortType) allowed(local string) bool {
	for _, r := range p.ContentRule {
		if r == local {
			return true
		}
	}
	return false
}

// Entry is a decoded group member.
type Entry struct {
	ID      string
	Member  wsa.EPR
	Content *xmlutil.Element
}

// Entries decodes a group resource's entry list from its state.
func Entries(r *wsrf.Resource) ([]Entry, error) {
	var out []Entry
	for _, c := range r.State.ChildrenNamed(wsrf.NSSG, "Entry") {
		memberEl := c.Child(wsrf.NSSG, "MemberServiceEPR")
		if memberEl == nil {
			return nil, fmt.Errorf("sg: entry %s has no member EPR", c.AttrValue("", "id"))
		}
		member, err := wsa.ParseEPR(memberEl)
		if err != nil {
			return nil, fmt.Errorf("sg: entry %s: %w", c.AttrValue("", "id"), err)
		}
		e := Entry{ID: c.AttrValue("", "id"), Member: member}
		if cc := c.Child(wsrf.NSSG, "Content"); cc != nil && len(cc.Children) > 0 {
			e.Content = cc.Children[0].Clone()
		}
		out = append(out, e)
	}
	return out, nil
}

// Client issues ServiceGroup requests.
type Client struct {
	C *container.Client
}

// Add registers a member (with optional content) and returns the entry id.
func (c *Client) Add(group, member wsa.EPR, content *xmlutil.Element) (string, error) {
	body := xmlutil.New(wsrf.NSSG, "Add").Add(
		xmlutil.New(wsrf.NSSG, "MemberEPR").Add(member.Element(wsa.NS, "EndpointReference")))
	if content != nil {
		body.Add(xmlutil.New(wsrf.NSSG, "Content").Add(content.Clone()))
	}
	resp, err := c.C.Call(group, ActionAdd, body)
	if err != nil {
		return "", err
	}
	return resp.ChildText(wsrf.NSSG, "EntryID"), nil
}

// Remove deletes an entry by id.
func (c *Client) Remove(group wsa.EPR, entryID string) error {
	body := xmlutil.New(wsrf.NSSG, "Remove").Add(xmlutil.NewText(wsrf.NSSG, "EntryID", entryID))
	_, err := c.C.Call(group, ActionRemove, body)
	return err
}

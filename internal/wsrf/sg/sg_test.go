package sg

import (
	"testing"

	"altstacks/internal/container"
	"altstacks/internal/soap"
	"altstacks/internal/wsa"
	"altstacks/internal/wsrf"
	"altstacks/internal/wsrf/bf"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

const nsG = "urn:vo"

func startGroup(t *testing.T, rules ...string) (*wsrf.Home, *Client, wsa.EPR) {
	t.Helper()
	c := container.New(container.SecurityNone)
	home := &wsrf.Home{
		DB:         xmldb.NewMemory(xmldb.CostModel{}),
		Collection: "groups",
		RefSpace:   nsG,
		RefLocal:   "GroupID",
		Endpoint:   func() string { return c.BaseURL() + "/group" },
	}
	svc := &container.Service{Path: "/group"}
	wsrf.Aggregate(svc, &PortType{Home: home, ContentRule: rules})
	c.Register(svc)
	if _, err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	group, err := home.Create(NewGroupState())
	if err != nil {
		t.Fatal(err)
	}
	return home, &Client{C: container.NewClient(container.ClientConfig{})}, group
}

func TestAddAndEntries(t *testing.T) {
	home, cl, group := startGroup(t)
	member := wsa.NewEPR("http://node-a/exec").WithProperty("urn:x", "Host", "node-a")
	content := xmlutil.NewText(nsG, "Application", "blast")
	entryID, err := cl.Add(group, member, content)
	if err != nil {
		t.Fatal(err)
	}
	if entryID == "" {
		t.Fatal("no entry id returned")
	}
	gid, _ := group.Property(nsG, "GroupID")
	r, err := home.Load(gid)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := Entries(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.ID != entryID || e.Member.Address != "http://node-a/exec" {
		t.Fatalf("entry = %+v", e)
	}
	if v, _ := e.Member.Property("urn:x", "Host"); v != "node-a" {
		t.Fatal("member reference property lost")
	}
	if e.Content == nil || e.Content.TrimText() != "blast" {
		t.Fatalf("content = %v", e.Content)
	}
}

func TestRemove(t *testing.T) {
	home, cl, group := startGroup(t)
	id1, _ := cl.Add(group, wsa.NewEPR("http://a"), nil)
	id2, _ := cl.Add(group, wsa.NewEPR("http://b"), nil)
	if err := cl.Remove(group, id1); err != nil {
		t.Fatal(err)
	}
	gid, _ := group.Property(nsG, "GroupID")
	r, _ := home.Load(gid)
	entries, _ := Entries(r)
	if len(entries) != 1 || entries[0].ID != id2 {
		t.Fatalf("entries after remove = %+v", entries)
	}
	// Removing again faults.
	if err := cl.Remove(group, id1); err == nil {
		t.Fatal("second remove succeeded")
	}
}

func TestContentRuleEnforced(t *testing.T) {
	_, cl, group := startGroup(t, "Application")
	if _, err := cl.Add(group, wsa.NewEPR("http://a"), xmlutil.NewText(nsG, "Application", "ok")); err != nil {
		t.Fatalf("allowed content rejected: %v", err)
	}
	_, err := cl.Add(group, wsa.NewEPR("http://a"), xmlutil.NewText(nsG, "Malware", "no"))
	f, ok := err.(*soap.Fault)
	if !ok || bf.ErrorCode(f) != bf.CodeAddRefused {
		t.Fatalf("err = %v", err)
	}
}

func TestAddWithoutMemberFaults(t *testing.T) {
	_, cl, group := startGroup(t)
	_, err := cl.C.Call(group, ActionAdd, xmlutil.New(wsrf.NSSG, "Add"))
	f, ok := err.(*soap.Fault)
	if !ok || bf.ErrorCode(f) != bf.CodeAddRefused {
		t.Fatalf("err = %v", err)
	}
}

func TestAddToUnknownGroupFaults(t *testing.T) {
	home, cl, _ := startGroup(t)
	ghost := home.EPRFor("ghost")
	_, err := cl.Add(ghost, wsa.NewEPR("http://a"), nil)
	f, ok := err.(*soap.Fault)
	if !ok || bf.ErrorCode(f) != bf.CodeResourceUnknown {
		t.Fatalf("err = %v", err)
	}
}

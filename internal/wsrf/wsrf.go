// Package wsrf implements the WS-Resource Framework core: the
// WS-Resource construct ("a composition of a Web service and a
// stateful resource", paper §2.1), persistence of resources as XML
// documents in a backend store, EPR minting, and the WSRF.NET
// programming model's library-level Create().
//
// Mirroring WSRF.NET (paper §3.1):
//
//   - Resources are XML documents persisted to a pluggable backend
//     (here the xmldb Xindice stand-in).
//   - The resource identified by the request EPR's reference property
//     is loaded before the service method runs and saved afterwards.
//   - WSRF does not define resource creation; ResourceHome.Create is
//     the library method "programmers can use to handle details of
//     interaction with the storage backend", which services may expose
//     however they wish.
//   - A write-through resource cache lets repeat operations skip the
//     read-before-write that an uncached implementation pays — the
//     cause of WSRF.NET's faster Set in Figure 2 ("through use of its
//     resource cache [WSRF.NET] is able to avoid this extra database
//     read and thus performs faster for set operations", §4.1.3).
//
// The spec-defined port types live in the subpackages rp
// (WS-ResourceProperties), rl (WS-ResourceLifetime), sg
// (WS-ServiceGroup), and bf (WS-BaseFaults).
package wsrf

import (
	"context"
	"encoding/xml"
	"fmt"
	"sort"
	"sync"
	"time"

	"altstacks/internal/soap"
	"altstacks/internal/uuid"
	"altstacks/internal/wsa"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

// OASIS WSRF namespaces.
const (
	NSRP = "http://docs.oasis-open.org/wsrf/rp-2"
	NSRL = "http://docs.oasis-open.org/wsrf/rl-2"
	NSSG = "http://docs.oasis-open.org/wsrf/sg-2"
	NSBF = "http://docs.oasis-open.org/wsrf/bf-2"
)

// Resource is one WS-Resource: identity, state document, and lifetime.
type Resource struct {
	// ID is the opaque resource identifier carried in the EPR.
	ID string
	// State is the persisted XML document — the [Resource]-annotated
	// members of the WSRF.NET programming model.
	State *xmlutil.Element
	// Termination is the scheduled termination time; zero means the
	// resource lives until explicitly destroyed.
	Termination time.Time

	// ctx is the request context of the operation this resource copy was
	// loaded for (set by MutateContext/ViewContext). It is deliberately
	// unexported and never cached: cached copies outlive requests, so a
	// retained context would both leak and cancel spuriously.
	ctx context.Context
}

// Context returns the request context this resource copy was loaded
// under, or context.Background() for copies obtained outside a
// request. Property Set implementations use it to thread the request
// (and its trace span) into the notifications they trigger.
func (r *Resource) Context() context.Context {
	if r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// terminationAttr stores the lifetime inside the persisted document.
const terminationAttr = "scheduledTermination"

// PropertyDef declares one resource property: a named, possibly
// computed projection of resource state (the [ResourceProperty]
// attribute in WSRF.NET — "the ResourceProperty value can be computed
// dynamically, using a portion of the WS-Resource state").
type PropertyDef struct {
	Name xml.Name
	// Get produces the property's current element values.
	Get func(r *Resource) []*xmlutil.Element
	// Set updates resource state from new values; nil marks the
	// property read-only.
	Set func(r *Resource, values []*xmlutil.Element) error
}

// StateChildProperty exposes children of the state document with the
// given local name directly as a read-write property — the common case
// where the property is the state (paper §4.1.1: the counter's
// resource "is simply a single variable").
func StateChildProperty(space, local string) PropertyDef {
	name := xml.Name{Space: space, Local: local}
	return PropertyDef{
		Name: name,
		Get: func(r *Resource) []*xmlutil.Element {
			var out []*xmlutil.Element
			for _, c := range r.State.ChildrenNamed(space, local) {
				out = append(out, c.Clone())
			}
			return out
		},
		Set: func(r *Resource, values []*xmlutil.Element) error {
			kept := r.State.Children[:0]
			for _, c := range r.State.Children {
				if !(c.Name.Space == space && c.Name.Local == local) {
					kept = append(kept, c)
				}
			}
			r.State.Children = kept
			for _, v := range values {
				r.State.Add(v.Clone())
			}
			return nil
		},
	}
}

// Home manages all WS-Resources of one type. "WSRF encourages each
// service to operate on a single type of resource" (paper §2.3); a
// Home is that one-type-per-service binding.
type Home struct {
	// DB is the storage backend.
	DB *xmldb.DB
	// Collection names the backend collection holding this type.
	Collection string
	// RefSpace/RefLocal name the EPR reference property carrying the
	// resource id (e.g. {urn:counter, CounterID}).
	RefSpace, RefLocal string
	// Endpoint supplies the service's transport address.
	Endpoint func() string
	// CacheEnabled turns on the WSRF.NET write-through resource cache.
	CacheEnabled bool
	// OnDestroy, when set, runs before a resource is removed — the
	// hook ExecService uses to kill a running job on Destroy (paper
	// §4.2.1) and DataService uses to remove directories. Its error
	// vetoes the destruction.
	OnDestroy func(r *Resource) error
	// AfterDestroy, when set, runs after a resource has been removed —
	// the notification broker uses it to recompute demand-based
	// publishing when a subscription is deleted.
	AfterDestroy func(id string)

	mu    sync.Mutex
	cache map[string]*Resource
	locks map[string]*sync.Mutex
	props []PropertyDef
}

// DefineProperty registers a resource property. Definitions are
// wiring-time; DefineProperty panics on duplicate names.
func (h *Home) DefineProperty(def PropertyDef) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, d := range h.props {
		if d.Name == def.Name {
			panic(fmt.Sprintf("wsrf: duplicate property %v", def.Name))
		}
	}
	h.props = append(h.props, def)
}

// Properties returns the registered definitions in definition order.
func (h *Home) Properties() []PropertyDef {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]PropertyDef(nil), h.props...)
}

// Property looks up a definition by local name (and, when space is
// non-empty, namespace).
func (h *Home) Property(space, local string) (PropertyDef, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, d := range h.props {
		if d.Name.Local == local && (space == "" || d.Name.Space == space) {
			return d, true
		}
	}
	return PropertyDef{}, false
}

// Create persists a new resource initialized with the given state and
// returns its EPR. This is the WSRF.NET ServiceBase.Create() library
// call: WSRF itself defines no Create operation (paper §2.3 — "the
// lack of Create in WSRF is problematic"), so every WSRF service
// exposes creation through an application-specific operation that
// calls this internally.
func (h *Home) Create(state *xmlutil.Element) (wsa.EPR, error) {
	return h.CreateWithID(uuid.NewString(), state)
}

// CreateContext is Create under a request context, so the storage
// write appears in the request's trace.
func (h *Home) CreateContext(ctx context.Context, state *xmlutil.Element) (wsa.EPR, error) {
	return h.CreateWithIDContext(ctx, uuid.NewString(), state)
}

// CreateWithID is Create with a caller-chosen identifier (used by
// services whose resource names are meaningful, like account DNs).
func (h *Home) CreateWithID(id string, state *xmlutil.Element) (wsa.EPR, error) {
	return h.CreateWithIDContext(context.Background(), id, state)
}

// CreateWithIDContext is CreateWithID under a request context.
func (h *Home) CreateWithIDContext(ctx context.Context, id string, state *xmlutil.Element) (wsa.EPR, error) {
	r := &Resource{ID: id, State: state.Clone()}
	if err := h.DB.CreateContext(ctx, h.Collection, id, encodeResource(r)); err != nil {
		return wsa.EPR{}, err
	}
	h.cachePut(r)
	return h.EPRFor(id), nil
}

// EPRFor builds the EPR addressing an existing resource id.
func (h *Home) EPRFor(id string) wsa.EPR {
	return wsa.NewEPR(h.Endpoint()).WithProperty(h.RefSpace, h.RefLocal, id)
}

// ResourceID extracts the resource id from a request envelope's
// reference-property header.
func (h *Home) ResourceID(env *soap.Envelope) (string, error) {
	id, ok := wsa.ResourceID(env, h.RefSpace, h.RefLocal)
	if !ok || id == "" {
		return "", soap.Faultf(soap.FaultClient,
			"request does not identify a %s resource (missing %s reference property)",
			h.Collection, h.RefLocal)
	}
	return id, nil
}

// Load fetches the resource from the store (refreshing the cache).
// Read operations always hit the database — the WSRF.NET cache exists
// to elide the read *before a write* in the wrapper's load-modify-save
// cycle (paper §4.1.3: it "is able to avoid this extra database read
// and thus performs faster for set operations"), not to serve reads.
// The returned Resource is private to the caller (deep-copied),
// matching the wrapper's deserialize-into-members step.
func (h *Home) Load(id string) (*Resource, error) {
	return h.LoadContext(context.Background(), id)
}

// LoadContext is Load under a request context.
func (h *Home) LoadContext(ctx context.Context, id string) (*Resource, error) {
	doc, err := h.DB.GetContext(ctx, h.Collection, id)
	if err != nil {
		return nil, err
	}
	r := decodeResource(id, doc)
	h.cachePut(r)
	return cloneResource(r), nil
}

// loadForUpdate is the write-path load: cache-first when enabled, so a
// mutation skips the read-before-write.
func (h *Home) loadForUpdate(ctx context.Context, id string) (*Resource, error) {
	if h.CacheEnabled {
		h.mu.Lock()
		if r, ok := h.cache[id]; ok {
			cp := cloneResource(r)
			h.mu.Unlock()
			return cp, nil
		}
		h.mu.Unlock()
	}
	return h.LoadContext(ctx, id)
}

// Save writes the resource back — the serialize-members step of the
// WSRF.NET wrapper. The cache is write-through: the store is always
// updated, and the cache copy refreshed.
func (h *Home) Save(r *Resource) error {
	return h.saveContext(context.Background(), r)
}

func (h *Home) saveContext(ctx context.Context, r *Resource) error {
	if err := h.DB.UpdateContext(ctx, h.Collection, r.ID, encodeResource(r)); err != nil {
		return err
	}
	h.cachePut(r)
	return nil
}

// Destroy removes the resource immediately (WS-ResourceLifetime's
// immediate destruction). The OnDestroy hook runs first; its failure
// aborts destruction.
func (h *Home) Destroy(id string) error {
	return h.DestroyContext(context.Background(), id)
}

// DestroyContext is Destroy under a request context.
func (h *Home) DestroyContext(ctx context.Context, id string) error {
	if h.OnDestroy != nil {
		r, err := h.LoadContext(ctx, id)
		if err != nil {
			return err
		}
		if err := h.OnDestroy(r); err != nil {
			return err
		}
	}
	if err := h.DB.DeleteContext(ctx, h.Collection, id); err != nil {
		return err
	}
	h.mu.Lock()
	delete(h.cache, id)
	h.mu.Unlock()
	if h.AfterDestroy != nil {
		h.AfterDestroy(id)
	}
	return nil
}

// Exists reports whether the resource id is live.
func (h *Home) Exists(id string) (bool, error) {
	if h.CacheEnabled {
		h.mu.Lock()
		_, ok := h.cache[id]
		h.mu.Unlock()
		if ok {
			return true, nil
		}
	}
	return h.DB.Exists(h.Collection, id)
}

// IDs lists live resource ids.
func (h *Home) IDs() ([]string, error) { return h.DB.IDs(h.Collection) }

// Expired returns ids whose scheduled termination has passed —
// consumed by the lifetime sweeper in package rl.
func (h *Home) Expired(now time.Time) ([]string, error) {
	ids, err := h.DB.IDs(h.Collection)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, id := range ids {
		r, err := h.Load(id)
		if err != nil {
			continue // destroyed concurrently
		}
		if !r.Termination.IsZero() && r.Termination.Before(now) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Mutate runs fn under the resource's exclusive lock with
// load-modify-save semantics — the wrapper-service execution model
// from Figure 1 ("the state associated with the client is retrieved
// from storage for the invocation and placed back into storage once
// the request is satisfied").
func (h *Home) Mutate(id string, fn func(r *Resource) error) error {
	return h.MutateContext(context.Background(), id, fn)
}

// MutateContext is Mutate under a request context: storage operations
// join the request trace, and the loaded resource copy carries ctx so
// fn (property Set implementations in particular) can thread it into
// the notifications it triggers via r.Context().
func (h *Home) MutateContext(ctx context.Context, id string, fn func(r *Resource) error) error {
	lock := h.lockFor(id)
	lock.Lock()
	defer lock.Unlock()
	r, err := h.loadForUpdate(ctx, id)
	if err != nil {
		return err
	}
	r.ctx = ctx
	if err := fn(r); err != nil {
		return err
	}
	return h.saveContext(ctx, r)
}

// View runs fn with a read-only snapshot under the resource lock.
func (h *Home) View(id string, fn func(r *Resource) error) error {
	return h.ViewContext(context.Background(), id, fn)
}

// ViewContext is View under a request context.
func (h *Home) ViewContext(ctx context.Context, id string, fn func(r *Resource) error) error {
	lock := h.lockFor(id)
	lock.Lock()
	defer lock.Unlock()
	r, err := h.LoadContext(ctx, id)
	if err != nil {
		return err
	}
	r.ctx = ctx
	return fn(r)
}

func (h *Home) lockFor(id string) *sync.Mutex {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.locks == nil {
		h.locks = map[string]*sync.Mutex{}
	}
	l, ok := h.locks[id]
	if !ok {
		l = &sync.Mutex{}
		h.locks[id] = l
	}
	return l
}

func (h *Home) cachePut(r *Resource) {
	if !h.CacheEnabled {
		return
	}
	h.mu.Lock()
	if h.cache == nil {
		h.cache = map[string]*Resource{}
	}
	h.cache[r.ID] = cloneResource(r)
	h.mu.Unlock()
}

// PropertyDocument assembles the full resource property document: all
// registered properties evaluated against the resource, wrapped in a
// wsrp:Properties root — the queryable "view or projection of the
// state of the WS-Resource" (paper §2.1).
func (h *Home) PropertyDocument(r *Resource) *xmlutil.Element {
	root := xmlutil.New(NSRP, "Properties")
	for _, def := range h.Properties() {
		for _, el := range def.Get(r) {
			root.Add(el)
		}
	}
	return root
}

func cloneResource(r *Resource) *Resource {
	return &Resource{ID: r.ID, State: r.State.Clone(), Termination: r.Termination}
}

func encodeResource(r *Resource) *xmlutil.Element {
	doc := r.State.Clone()
	if !r.Termination.IsZero() {
		doc.SetAttr(NSRL, terminationAttr, r.Termination.UTC().Format(time.RFC3339Nano))
	}
	return doc
}

func decodeResource(id string, doc *xmlutil.Element) *Resource {
	r := &Resource{ID: id, State: doc}
	if v, ok := doc.Attr(NSRL, terminationAttr); ok {
		if t, err := time.Parse(time.RFC3339Nano, v); err == nil {
			r.Termination = t
		}
		// Strip the bookkeeping attribute from the in-memory state.
		kept := doc.Attrs[:0]
		for _, a := range doc.Attrs {
			if !(a.Name.Space == NSRL && a.Name.Local == terminationAttr) {
				kept = append(kept, a)
			}
		}
		doc.Attrs = kept
	}
	return r
}

package wsrf

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

func newHome(cache bool) *Home {
	return &Home{
		DB:           xmldb.NewMemory(xmldb.CostModel{}),
		Collection:   "counters",
		RefSpace:     "urn:counter",
		RefLocal:     "CounterID",
		Endpoint:     func() string { return "http://h/counter" },
		CacheEnabled: cache,
	}
}

func counterState(v int) *xmlutil.Element {
	return xmlutil.New("urn:counter", "CounterState").Add(
		xmlutil.NewText("urn:counter", "cv", fmt.Sprint(v)))
}

func TestCreateLoadSaveDestroy(t *testing.T) {
	for _, cache := range []bool{false, true} {
		t.Run(fmt.Sprintf("cache=%v", cache), func(t *testing.T) {
			h := newHome(cache)
			epr, err := h.Create(counterState(0))
			if err != nil {
				t.Fatal(err)
			}
			id, ok := epr.Property("urn:counter", "CounterID")
			if !ok || id == "" {
				t.Fatalf("EPR lacks resource id: %+v", epr)
			}
			r, err := h.Load(id)
			if err != nil {
				t.Fatal(err)
			}
			if r.State.ChildText("urn:counter", "cv") != "0" {
				t.Fatalf("state = %s", r.State)
			}
			r.State.Child("urn:counter", "cv").Text = "7"
			if err := h.Save(r); err != nil {
				t.Fatal(err)
			}
			r2, _ := h.Load(id)
			if r2.State.ChildText("urn:counter", "cv") != "7" {
				t.Fatal("save not visible")
			}
			if err := h.Destroy(id); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Load(id); err == nil {
				t.Fatal("load after destroy succeeded")
			}
			if ok, _ := h.Exists(id); ok {
				t.Fatal("destroyed resource still exists")
			}
		})
	}
}

func TestCacheEliminatesReadBeforeWrite(t *testing.T) {
	// The WSRF.NET effect from paper §4.1.3: with the write-through
	// cache, a Set does not pay a database read; without it, it does.
	run := func(cache bool) xmldb.Stats {
		h := newHome(cache)
		epr, err := h.Create(counterState(0))
		if err != nil {
			t.Fatal(err)
		}
		id, _ := epr.Property("urn:counter", "CounterID")
		for i := 0; i < 5; i++ {
			err := h.Mutate(id, func(r *Resource) error {
				r.State.Child("urn:counter", "cv").Text = fmt.Sprint(i)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return h.DB.Stats()
	}
	with := run(true)
	without := run(false)
	if with.Reads != 0 {
		t.Fatalf("cached home performed %d db reads on mutate, want 0", with.Reads)
	}
	if without.Reads < 5 {
		t.Fatalf("uncached home performed %d db reads, want ≥5", without.Reads)
	}
	if with.Updates != without.Updates {
		t.Fatalf("write-through must not change write counts: %d vs %d", with.Updates, without.Updates)
	}
}

func TestLoadReturnsPrivateCopy(t *testing.T) {
	h := newHome(true)
	epr, _ := h.Create(counterState(3))
	id, _ := epr.Property("urn:counter", "CounterID")
	r1, _ := h.Load(id)
	r1.State.Child("urn:counter", "cv").Text = "999"
	r2, _ := h.Load(id)
	if r2.State.ChildText("urn:counter", "cv") != "3" {
		t.Fatal("Load returned aliased state")
	}
}

func TestTerminationPersists(t *testing.T) {
	h := newHome(false)
	epr, _ := h.Create(counterState(0))
	id, _ := epr.Property("urn:counter", "CounterID")
	when := time.Now().Add(time.Hour).UTC().Truncate(time.Millisecond)
	if err := h.Mutate(id, func(r *Resource) error { r.Termination = when; return nil }); err != nil {
		t.Fatal(err)
	}
	r, err := h.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Termination.Equal(when) {
		t.Fatalf("termination = %v, want %v", r.Termination, when)
	}
	// The bookkeeping attribute must not leak into the state doc.
	if _, ok := r.State.Attr(NSRL, "scheduledTermination"); ok {
		t.Fatal("termination attribute leaked into state")
	}
}

func TestExpired(t *testing.T) {
	h := newHome(false)
	now := time.Now()
	mk := func(offset time.Duration) string {
		epr, _ := h.Create(counterState(0))
		id, _ := epr.Property("urn:counter", "CounterID")
		if offset != 0 {
			_ = h.Mutate(id, func(r *Resource) error { r.Termination = now.Add(offset); return nil })
		}
		return id
	}
	expired := mk(-time.Minute)
	_ = mk(time.Hour) // future
	_ = mk(0)         // infinite
	got, err := h.Expired(now)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != expired {
		t.Fatalf("expired = %v, want [%s]", got, expired)
	}
}

func TestCreateWithIDDuplicate(t *testing.T) {
	h := newHome(false)
	if _, err := h.CreateWithID("dup", counterState(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.CreateWithID("dup", counterState(1)); !errors.Is(err, xmldb.ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestMutateAtomicUnderConcurrency(t *testing.T) {
	for _, cache := range []bool{false, true} {
		t.Run(fmt.Sprintf("cache=%v", cache), func(t *testing.T) {
			h := newHome(cache)
			epr, _ := h.Create(counterState(0))
			id, _ := epr.Property("urn:counter", "CounterID")
			var wg sync.WaitGroup
			const workers, perWorker = 8, 25
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						err := h.Mutate(id, func(r *Resource) error {
							cv := r.State.Child("urn:counter", "cv")
							var v int
							fmt.Sscanf(cv.TrimText(), "%d", &v)
							cv.Text = fmt.Sprint(v + 1)
							return nil
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			r, _ := h.Load(id)
			if got := r.State.ChildText("urn:counter", "cv"); got != fmt.Sprint(workers*perWorker) {
				t.Fatalf("counter = %s, want %d (lost updates)", got, workers*perWorker)
			}
		})
	}
}

func TestPropertyRegistryAndDocument(t *testing.T) {
	h := newHome(false)
	h.DefineProperty(StateChildProperty("urn:counter", "cv"))
	h.DefineProperty(PropertyDef{
		Name: xml.Name{Space: "urn:counter", Local: "DoubleValue"},
		Get: func(r *Resource) []*xmlutil.Element {
			var v int
			fmt.Sscanf(r.State.ChildText("urn:counter", "cv"), "%d", &v)
			return []*xmlutil.Element{xmlutil.NewText("urn:counter", "DoubleValue", fmt.Sprint(v*2))}
		},
	})
	epr, _ := h.Create(counterState(21))
	id, _ := epr.Property("urn:counter", "CounterID")
	r, _ := h.Load(id)
	doc := h.PropertyDocument(r)
	if doc.ChildText("urn:counter", "cv") != "21" {
		t.Fatalf("cv property = %q", doc.ChildText("urn:counter", "cv"))
	}
	if doc.ChildText("urn:counter", "DoubleValue") != "42" {
		t.Fatalf("computed property = %q (doc %s)", doc.ChildText("urn:counter", "DoubleValue"), doc)
	}
	if _, ok := h.Property("", "cv"); !ok {
		t.Fatal("property lookup by local name failed")
	}
	if _, ok := h.Property("urn:wrong", "cv"); ok {
		t.Fatal("property lookup matched wrong namespace")
	}
}

func TestDefinePropertyDuplicatePanics(t *testing.T) {
	h := newHome(false)
	h.DefineProperty(StateChildProperty("u", "x"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate DefineProperty did not panic")
		}
	}()
	h.DefineProperty(StateChildProperty("u", "x"))
}

func TestStateChildPropertySetReplacesAll(t *testing.T) {
	def := StateChildProperty("u", "x")
	r := &Resource{ID: "1", State: xmlutil.New("u", "S").Add(
		xmlutil.NewText("u", "x", "a"),
		xmlutil.NewText("u", "x", "b"),
		xmlutil.NewText("u", "other", "keep"),
	)}
	if got := def.Get(r); len(got) != 2 {
		t.Fatalf("get = %d values", len(got))
	}
	if err := def.Set(r, []*xmlutil.Element{xmlutil.NewText("u", "x", "c")}); err != nil {
		t.Fatal(err)
	}
	if got := def.Get(r); len(got) != 1 || got[0].TrimText() != "c" {
		t.Fatalf("after set: %v", got)
	}
	if r.State.ChildText("u", "other") != "keep" {
		t.Fatal("unrelated children disturbed")
	}
}

func TestOnDestroyHookRunsAndCanVeto(t *testing.T) {
	h := newHome(false)
	killed := ""
	h.OnDestroy = func(r *Resource) error {
		if r.State.ChildText("urn:counter", "cv") == "13" {
			return fmt.Errorf("resource is cursed")
		}
		killed = r.ID
		return nil
	}
	epr, _ := h.Create(counterState(1))
	id, _ := epr.Property("urn:counter", "CounterID")
	if err := h.Destroy(id); err != nil {
		t.Fatal(err)
	}
	if killed != id {
		t.Fatal("OnDestroy hook did not run")
	}
	epr13, _ := h.Create(counterState(13))
	id13, _ := epr13.Property("urn:counter", "CounterID")
	if err := h.Destroy(id13); err == nil {
		t.Fatal("veto ignored")
	}
	if ok, _ := h.Exists(id13); !ok {
		t.Fatal("vetoed destroy still removed the resource")
	}
}

func TestConcurrentDestroyAndMutate(t *testing.T) {
	// A destroy racing in-flight mutations must leave the system in one
	// of two consistent states: resource gone, or mutation applied.
	// Either way nothing panics, deadlocks, or resurrects the resource
	// after a successful destroy has been observed by the caller.
	for _, cache := range []bool{false, true} {
		t.Run(fmt.Sprintf("cache=%v", cache), func(t *testing.T) {
			h := newHome(cache)
			epr, err := h.Create(counterState(0))
			if err != nil {
				t.Fatal(err)
			}
			id, _ := epr.Property("urn:counter", "CounterID")
			var wg sync.WaitGroup
			destroyed := make(chan struct{})
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					err := h.Mutate(id, func(r *Resource) error {
						r.State.Child("urn:counter", "cv").Text = fmt.Sprint(i)
						return nil
					})
					if err != nil {
						return // destroyed under us: acceptable
					}
				}
			}()
			go func() {
				defer wg.Done()
				time.Sleep(time.Millisecond)
				if err := h.Destroy(id); err == nil {
					close(destroyed)
				}
			}()
			wg.Wait()
			select {
			case <-destroyed:
				// After an observed destroy, the resource must stay gone
				// (the cache must not resurrect it on a read).
				if ok, _ := h.Exists(id); ok {
					t.Fatal("resource visible after observed destroy")
				}
				if _, err := h.Load(id); err == nil {
					t.Fatal("load succeeded after observed destroy")
				}
			default:
				// Destroy lost the race entirely; the resource survives.
				if ok, _ := h.Exists(id); !ok {
					t.Fatal("resource vanished without a successful destroy")
				}
			}
		})
	}
}

func TestViewDoesNotBlockOtherResources(t *testing.T) {
	// Per-resource locks must be independent: holding one resource's
	// lock cannot serialize access to another.
	h := newHome(false)
	a, _ := h.Create(counterState(0))
	b, _ := h.Create(counterState(0))
	aid, _ := a.Property("urn:counter", "CounterID")
	bid, _ := b.Property("urn:counter", "CounterID")
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_ = h.View(aid, func(*Resource) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	done := make(chan error, 1)
	go func() {
		done <- h.Mutate(bid, func(r *Resource) error { return nil })
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("independent resource blocked behind another's lock")
	}
	close(release)
}

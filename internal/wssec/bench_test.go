package wssec

import (
	"testing"

	"altstacks/internal/certs"
	"altstacks/internal/soap"
	"altstacks/internal/xmlutil"
)

// BenchmarkSignedRoundTrip is the full Figure 4 per-message security
// cost: sign a request, put it on the wire (marshal + parse), and
// verify it — the work the container's Security/Policy Handler and the
// client's signing layer repeat for every X.509-mode message. The RSA
// signature and digest checks are the paper's measured effect and are
// performed every iteration; the chain-validation cache only removes
// the redundant per-message trust re-derivation.
func BenchmarkSignedRoundTrip(b *testing.B) {
	ca, id := benchPKI(b)
	signer := NewSigner(id)
	verifier := NewVerifier(ca.Pool())
	body := xmlutil.New("urn:c", "Set").Add(xmlutil.NewText("urn:c", "value", "5"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := soap.New(body.Clone())
		if err := signer.Sign(env); err != nil {
			b.Fatal(err)
		}
		parsed, err := soap.Parse(env.Marshal())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := verifier.Verify(parsed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerify isolates the receive side: one pre-signed message
// verified repeatedly, the container's steady-state inbound cost.
func BenchmarkVerify(b *testing.B) {
	ca, id := benchPKI(b)
	env := soap.New(xmlutil.New("urn:c", "Set").Add(xmlutil.NewText("urn:c", "value", "5")))
	if err := NewSigner(id).Sign(env); err != nil {
		b.Fatal(err)
	}
	wire := env.Marshal()
	verifier := NewVerifier(ca.Pool())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parsed, err := soap.Parse(wire)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := verifier.Verify(parsed); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPKI(b *testing.B) (*certs.Authority, *certs.Identity) {
	b.Helper()
	pkiOnce.Do(pkiInit)
	return ca, alice
}

package wssec

import (
	"strings"
	"testing"
	"time"

	"altstacks/internal/soap"
	"altstacks/internal/xmlutil"
)

// freshEnvelope builds an unsigned request body like signedEnvelope's.
func freshEnvelope() *soap.Envelope {
	return soap.New(xmlutil.New("urn:c", "Set").Add(xmlutil.NewText("urn:c", "value", "5")))
}

// reparse simulates wire transit.
func reparse(t *testing.T, env *soap.Envelope) *soap.Envelope {
	t.Helper()
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}

// TestTrustCacheSteadyStateZeroChainVerifications pins the cache's
// purpose: after the first message from a client, further messages do
// no x509 chain validation work at all.
func TestTrustCacheSteadyStateZeroChainVerifications(t *testing.T) {
	ca, _ := pki(t)
	v := NewVerifier(ca.Pool())
	for i := 0; i < 5; i++ {
		if _, err := v.Verify(reparse(t, signedEnvelope(t))); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	st := v.CacheStats()
	if st.ChainVerifications != 1 {
		t.Fatalf("chain verifications = %d, want 1 (steady state must be cache-hot)", st.ChainVerifications)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestTrustCacheExpiredTimestampStillRejected: freshness is checked
// per message even when the certificate is cache-hot.
func TestTrustCacheExpiredTimestampStillRejected(t *testing.T) {
	ca, _ := pki(t)
	v := NewVerifier(ca.Pool())
	// Keep the cache entry alive under the advanced clock below: the
	// TTL must not be what rejects the message.
	v.CacheTTL = time.Hour
	// Warm the cache with a fresh message.
	if _, err := v.Verify(reparse(t, signedEnvelope(t))); err != nil {
		t.Fatal(err)
	}
	// A message signed now, judged by a clock far past its Expires.
	stale := reparse(t, signedEnvelope(t))
	v.Now = func() time.Time { return time.Now().Add(MaxMessageAge + 10*time.Minute) }
	_, err := v.Verify(stale)
	if err == nil || !strings.Contains(err.Error(), "expired") {
		t.Fatalf("err = %v, want timestamp expiry", err)
	}
	if n := v.CacheStats().ChainVerifications; n != 1 {
		t.Fatalf("chain verifications = %d, want 1 (rejection must come from freshness, not a cache miss)", n)
	}
}

// TestTrustCacheTamperedBodyStillRejected: digest checks run per
// message even when the certificate is cache-hot.
func TestTrustCacheTamperedBodyStillRejected(t *testing.T) {
	ca, _ := pki(t)
	v := NewVerifier(ca.Pool())
	if _, err := v.Verify(reparse(t, signedEnvelope(t))); err != nil {
		t.Fatal(err)
	}
	tampered := reparse(t, signedEnvelope(t))
	tampered.Body.Child("urn:c", "value").SetText("6000000")
	_, err := v.Verify(tampered)
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("err = %v, want digest mismatch", err)
	}
}

// TestTrustCacheRootPoolChangeInvalidates: revoking trust by swapping
// the root pool must not be masked by cached chain validations.
func TestTrustCacheRootPoolChangeInvalidates(t *testing.T) {
	ca, _ := pki(t)
	v := NewVerifier(ca.Pool())
	if _, err := v.Verify(reparse(t, signedEnvelope(t))); err != nil {
		t.Fatal(err)
	}
	if n := v.CacheStats().ChainVerifications; n != 1 {
		t.Fatalf("chain verifications = %d, want 1", n)
	}
	// The CA is no longer trusted: only mallory's roots remain.
	v.Roots = mallory.Pool()
	_, err := v.Verify(reparse(t, signedEnvelope(t)))
	if err == nil || !strings.Contains(err.Error(), "untrusted certificate") {
		t.Fatalf("err = %v, want untrusted certificate", err)
	}
	if st := v.CacheStats(); st.ChainVerifications != 2 {
		t.Fatalf("chain verifications = %d, want 2 (pool swap must force re-validation)", st.ChainVerifications)
	}
	// Restoring the original pool must also re-validate, not resurrect
	// entries cached against it earlier.
	v.Roots = ca.Pool()
	if _, err := v.Verify(reparse(t, signedEnvelope(t))); err != nil {
		t.Fatal(err)
	}
	if st := v.CacheStats(); st.ChainVerifications != 3 {
		t.Fatalf("chain verifications = %d, want 3", st.ChainVerifications)
	}
}

// TestTrustCacheTTLExpiry: entries stop serving after CacheTTL.
func TestTrustCacheTTLExpiry(t *testing.T) {
	ca, _ := pki(t)
	v := NewVerifier(ca.Pool())
	v.CacheTTL = time.Minute
	base := time.Now()
	v.Now = func() time.Time { return base }
	if _, err := v.Verify(reparse(t, signedEnvelope(t))); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(reparse(t, signedEnvelope(t))); err != nil {
		t.Fatal(err)
	}
	if n := v.CacheStats().ChainVerifications; n != 1 {
		t.Fatalf("chain verifications = %d, want 1 inside TTL", n)
	}
	// Advance past the TTL (still inside message freshness skew).
	base = base.Add(2 * time.Minute)
	if _, err := v.Verify(reparse(t, signedEnvelope(t))); err != nil {
		t.Fatal(err)
	}
	if n := v.CacheStats().ChainVerifications; n != 2 {
		t.Fatalf("chain verifications = %d, want 2 after TTL expiry", n)
	}
}

// TestTrustCacheDisabled: a negative TTL turns memoization off.
func TestTrustCacheDisabled(t *testing.T) {
	ca, _ := pki(t)
	v := NewVerifier(ca.Pool())
	v.CacheTTL = -1
	for i := 0; i < 3; i++ {
		if _, err := v.Verify(reparse(t, signedEnvelope(t))); err != nil {
			t.Fatal(err)
		}
	}
	st := v.CacheStats()
	if st.ChainVerifications != 3 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 3 verifications and 0 entries", st)
	}
}

// TestTrustCacheEntryCap: the cache never exceeds CacheSize distinct
// certificates.
func TestTrustCacheEntryCap(t *testing.T) {
	ca, _ := pki(t)
	v := NewVerifier(ca.Pool())
	v.CacheSize = 2
	for _, cn := range []string{"CN=u1", "CN=u2", "CN=u3"} {
		id, err := ca.Issue(cn)
		if err != nil {
			t.Fatal(err)
		}
		env := freshEnvelope()
		if err := NewSigner(id).Sign(env); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Verify(reparse(t, env)); err != nil {
			t.Fatal(err)
		}
	}
	if st := v.CacheStats(); st.Entries > 2 {
		t.Fatalf("entries = %d, want <= 2", st.Entries)
	}
}

// TestTrustCacheUntrustedSignerNeverCached: eve (signed by mallory) is
// rejected every time and never lands in the trust cache.
func TestTrustCacheUntrustedSignerNeverCached(t *testing.T) {
	ca, _ := pki(t)
	v := NewVerifier(ca.Pool())
	env := freshEnvelope()
	if err := NewSigner(eve).Sign(env); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := v.Verify(reparse(t, env)); err == nil {
			t.Fatal("untrusted signer accepted")
		}
	}
	st := v.CacheStats()
	if st.Entries != 0 {
		t.Fatalf("entries = %d, want 0 (failures must not be cached as trust)", st.Entries)
	}
	if st.ChainVerifications != 2 {
		t.Fatalf("chain verifications = %d, want 2", st.ChainVerifications)
	}
}

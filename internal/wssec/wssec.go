// Package wssec implements the WS-Security message protection used in
// the paper's X.509 experiments: an X.509 BinarySecurityToken plus an
// XML digital signature over the SOAP body and a freshness timestamp.
//
// In the paper this processing was supplied by Microsoft's Web
// Services Enhancements (WSE) inside the container's Security/Policy
// Handler (Figure 1). The performance claim being reproduced is that
// X.509 signing dominates end-to-end latency (Figure 4) — "the
// overhead of the security processing is so large that the performance
// differences between the two underlying systems tend to fade in
// significance" — so the implementation performs real RSA-SHA256
// signing and full chain verification per message.
//
// Canonicalization uses xmlutil's deterministic canonical form in
// place of W3C C14N; signer and verifier share it, which is the
// property signatures require.
package wssec

import (
	"bytes"
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"altstacks/internal/certs"
	"altstacks/internal/obs"
	"altstacks/internal/soap"
	"altstacks/internal/xmlutil"
)

// Namespaces of the OASIS WSS 1.0 specification set.
const (
	NSWSE = "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-secext-1.0.xsd"
	NSWSU = "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-utility-1.0.xsd"
	NSDS  = "http://www.w3.org/2000/09/xmldsig#"
)

// Algorithm identifiers recorded in the signature for interoperability.
const (
	algCanonical = "urn:altstacks:canonical-xml"
	algSignature = "http://www.w3.org/2001/04/xmldsig-more#rsa-sha256"
	algDigest    = "http://www.w3.org/2001/04/xmlenc#sha256"
	tokenProfile = "http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-x509-token-profile-1.0#X509v3"
)

// MaxMessageAge bounds how stale a signed message's wsu:Timestamp may
// be before verification rejects it (replay mitigation).
const MaxMessageAge = 5 * time.Minute

// Signer signs outgoing envelopes with an X.509 identity.
type Signer struct {
	ID *certs.Identity

	// tokenOnce caches the base64 BinarySecurityToken text: the
	// certificate never changes for the life of the Signer, so the
	// ~2.4 KB encode is paid once, not per message.
	tokenOnce sync.Once
	token     string
}

// NewSigner returns a Signer for the identity.
func NewSigner(id *certs.Identity) *Signer { return &Signer{ID: id} }

func (s *Signer) securityToken() string {
	s.tokenOnce.Do(func() {
		s.token = base64.StdEncoding.EncodeToString(s.ID.CertDER)
	})
	return s.token
}

// Sign attaches a wsse:Security header to the envelope containing a
// timestamp, the signer's certificate as a BinarySecurityToken, and an
// RSA-SHA256 signature covering the body and the timestamp.
func (s *Signer) Sign(env *soap.Envelope) error {
	if env.Body == nil && env.Fault == nil {
		return fmt.Errorf("wssec: refusing to sign an empty envelope")
	}
	now := time.Now().UTC()
	ts := xmlutil.New(NSWSU, "Timestamp").Add(
		xmlutil.NewText(NSWSU, "Created", now.Format(time.RFC3339Nano)),
		xmlutil.NewText(NSWSU, "Expires", now.Add(MaxMessageAge).Format(time.RFC3339Nano)),
	)
	bodyDigest := digestOf(bodyElement(env))
	tsDigest := digestOf(ts)

	signedInfo := xmlutil.New(NSDS, "SignedInfo").Add(
		xmlutil.New(NSDS, "CanonicalizationMethod").SetAttr("", "Algorithm", algCanonical),
		xmlutil.New(NSDS, "SignatureMethod").SetAttr("", "Algorithm", algSignature),
		reference("#Body", bodyDigest),
		reference("#Timestamp", tsDigest),
	)
	sig, err := s.signElement(signedInfo)
	if err != nil {
		return err
	}
	security := xmlutil.New(NSWSE, "Security").
		SetAttr(soap.NS, "mustUnderstand", "1").
		Add(
			ts,
			xmlutil.NewText(NSWSE, "BinarySecurityToken", s.securityToken()).
				SetAttr("", "ValueType", tokenProfile),
			xmlutil.New(NSDS, "Signature").Add(
				signedInfo,
				xmlutil.NewText(NSDS, "SignatureValue", base64.StdEncoding.EncodeToString(sig)),
			),
		)
	env.Headers = append(env.Headers, security)
	return nil
}

func (s *Signer) signElement(el *xmlutil.Element) ([]byte, error) {
	h := el.CanonicalSum256()
	sig, err := rsa.SignPKCS1v15(rand.Reader, s.ID.Key, crypto.SHA256, h[:])
	if err != nil {
		return nil, fmt.Errorf("wssec: sign: %w", err)
	}
	return sig, nil
}

func reference(uri string, digest [sha256.Size]byte) *xmlutil.Element {
	return xmlutil.New(NSDS, "Reference").SetAttr("", "URI", uri).Add(
		xmlutil.New(NSDS, "DigestMethod").SetAttr("", "Algorithm", algDigest),
		xmlutil.NewText(NSDS, "DigestValue", base64.StdEncoding.EncodeToString(digest[:])),
	)
}

// digestOf hashes the canonical form directly, never materializing it.
func digestOf(el *xmlutil.Element) [sha256.Size]byte {
	return el.CanonicalSum256()
}

// bodyElement returns the element the "#Body" reference covers: the
// body child, or the fault rendered as an element.
func bodyElement(env *soap.Envelope) *xmlutil.Element {
	if env.Body != nil {
		return env.Body
	}
	// Sign the serialized fault representation.
	return env.Element().Child(soap.NS, "Body")
}

// Trust-cache defaults; see Verifier.CacheTTL / Verifier.CacheSize.
const (
	DefaultTrustTTL       = 5 * time.Minute
	DefaultTrustCacheSize = 1024
)

// trustEntry is one memoized chain validation: the parsed certificate
// and how long the derived trust may be reused.
type trustEntry struct {
	cert    *x509.Certificate
	expires time.Time
}

// Verifier checks WS-Security headers on incoming envelopes.
//
// Certificate parsing and chain validation are memoized in a bounded
// trust cache keyed by the SHA-256 of the token DER: the same client
// certificate arrives on every message of a session, and re-deriving
// its trust chain per message is pure overhead. The per-message
// RSA signature check, timestamp freshness, and reference digests are
// NEVER cached — they are the paper's measured security cost and they
// differ per message. Replacing Roots invalidates the cache; entries
// also expire after CacheTTL and never outlive the certificate.
type Verifier struct {
	Roots *x509.CertPool
	// Now allows tests to pin the clock; nil means time.Now.
	Now func() time.Time
	// CacheTTL bounds how long one chain validation is trusted.
	// 0 means DefaultTrustTTL; negative disables the cache.
	CacheTTL time.Duration
	// CacheSize caps distinct cached certificates (0 means
	// DefaultTrustCacheSize). The cache evicts arbitrarily beyond it.
	CacheSize int

	mu         sync.Mutex
	trust      map[[sha256.Size]byte]trustEntry
	trustRoots *x509.CertPool // pool the cached entries were verified against

	chainVerifications atomic.Int64
}

// Registry mirrors of the trust-cache counters, aggregated across
// every Verifier instance; CacheStats stays the per-instance view.
var (
	chainVerificationsTotal = obs.NewCounter("ogsa_wssec_chain_verifications_total", "",
		"full X.509 chain verifications performed (trust-cache misses)")
	trustCacheHitsTotal = obs.NewCounter("ogsa_wssec_trust_cache_hits_total", "",
		"token verifications served from the trust cache")
)

// NewVerifier returns a Verifier trusting the given roots.
func NewVerifier(roots *x509.CertPool) *Verifier { return &Verifier{Roots: roots} }

// TrustCacheStats reports cache effectiveness for tests and metrics.
type TrustCacheStats struct {
	// ChainVerifications counts full x509 chain validations performed
	// (cache misses); steady-state traffic from known clients should
	// not increase it.
	ChainVerifications int64
	// Entries is the current number of cached certificates.
	Entries int
}

// CacheStats returns a snapshot of trust-cache counters.
func (v *Verifier) CacheStats() TrustCacheStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return TrustCacheStats{
		ChainVerifications: v.chainVerifications.Load(),
		Entries:            len(v.trust),
	}
}

func (v *Verifier) now() time.Time {
	if v.Now != nil {
		return v.Now()
	}
	return time.Now()
}

// trustedCert resolves the BinarySecurityToken DER to a
// chain-validated certificate, consulting the trust cache first.
func (v *Verifier) trustedCert(der []byte) (*x509.Certificate, error) {
	key := sha256.Sum256(der)
	now := v.now()
	if v.CacheTTL >= 0 {
		v.mu.Lock()
		// A swapped root pool (rotation, revocation) orphans every
		// cached trust derivation.
		if v.trustRoots != v.Roots {
			v.trust = nil
			v.trustRoots = v.Roots
		}
		if e, ok := v.trust[key]; ok && now.Before(e.expires) {
			v.mu.Unlock()
			trustCacheHitsTotal.Inc()
			return e.cert, nil
		}
		v.mu.Unlock()
	}

	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("wssec: token parse: %w", err)
	}
	v.chainVerifications.Add(1)
	chainVerificationsTotal.Inc()
	if _, err := cert.Verify(x509.VerifyOptions{
		Roots:     v.Roots,
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	}); err != nil {
		return nil, fmt.Errorf("wssec: untrusted certificate: %w", err)
	}
	if v.CacheTTL < 0 {
		return cert, nil
	}

	ttl := v.CacheTTL
	if ttl == 0 {
		ttl = DefaultTrustTTL
	}
	expires := now.Add(ttl)
	// Trust must not outlive the certificate itself.
	if cert.NotAfter.Before(expires) {
		expires = cert.NotAfter
	}
	capacity := v.CacheSize
	if capacity <= 0 {
		capacity = DefaultTrustCacheSize
	}
	v.mu.Lock()
	if v.trustRoots == v.Roots {
		if v.trust == nil {
			v.trust = make(map[[sha256.Size]byte]trustEntry)
		}
		// Arbitrary eviction: the cache holds one entry per client
		// certificate, so churn here means more distinct clients than
		// capacity, not a hot/cold working set worth LRU bookkeeping.
		for k := range v.trust {
			if len(v.trust) < capacity {
				break
			}
			delete(v.trust, k)
		}
		v.trust[key] = trustEntry{cert: cert, expires: expires}
	}
	v.mu.Unlock()
	return cert, nil
}

// Verify validates the envelope's wsse:Security header: certificate
// chain, timestamp freshness, body and timestamp digests, and the
// signature over SignedInfo. It returns the signer's certificate so
// callers can authorize by subject DN.
func (v *Verifier) Verify(env *soap.Envelope) (*x509.Certificate, error) {
	sec := env.Header(NSWSE, "Security")
	if sec == nil {
		return nil, fmt.Errorf("wssec: no Security header")
	}
	bstEl := sec.Child(NSWSE, "BinarySecurityToken")
	if bstEl == nil {
		return nil, fmt.Errorf("wssec: no BinarySecurityToken")
	}
	der, err := base64.StdEncoding.DecodeString(bstEl.TrimText())
	if err != nil {
		return nil, fmt.Errorf("wssec: token decode: %w", err)
	}
	cert, err := v.trustedCert(der)
	if err != nil {
		return nil, err
	}

	ts := sec.Child(NSWSU, "Timestamp")
	if ts == nil {
		return nil, fmt.Errorf("wssec: no Timestamp")
	}
	if err := v.checkFreshness(ts); err != nil {
		return nil, err
	}

	sigEl := sec.Child(NSDS, "Signature")
	if sigEl == nil {
		return nil, fmt.Errorf("wssec: no Signature")
	}
	signedInfo := sigEl.Child(NSDS, "SignedInfo")
	if signedInfo == nil {
		return nil, fmt.Errorf("wssec: no SignedInfo")
	}
	sigVal, err := base64.StdEncoding.DecodeString(sigEl.ChildText(NSDS, "SignatureValue"))
	if err != nil {
		return nil, fmt.Errorf("wssec: signature decode: %w", err)
	}
	pub, ok := cert.PublicKey.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("wssec: certificate key is %T, want RSA", cert.PublicKey)
	}
	h := signedInfo.CanonicalSum256()
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, h[:], sigVal); err != nil {
		return nil, fmt.Errorf("wssec: signature invalid: %w", err)
	}

	// Check every reference digest against the live message parts.
	for _, ref := range signedInfo.ChildrenNamed(NSDS, "Reference") {
		uri := ref.AttrValue("", "URI")
		want, err := base64.StdEncoding.DecodeString(ref.ChildText(NSDS, "DigestValue"))
		if err != nil {
			return nil, fmt.Errorf("wssec: digest decode for %s: %w", uri, err)
		}
		var got [sha256.Size]byte
		switch uri {
		case "#Body":
			got = digestOf(bodyElement(env))
		case "#Timestamp":
			got = digestOf(ts)
		default:
			return nil, fmt.Errorf("wssec: unknown reference %q", uri)
		}
		if !bytes.Equal(got[:], want) {
			return nil, fmt.Errorf("wssec: digest mismatch for %s (message altered)", uri)
		}
	}
	return cert, nil
}

func (v *Verifier) checkFreshness(ts *xmlutil.Element) error {
	now := v.now()
	created, err := time.Parse(time.RFC3339Nano, ts.ChildText(NSWSU, "Created"))
	if err != nil {
		return fmt.Errorf("wssec: bad Created: %w", err)
	}
	expires, err := time.Parse(time.RFC3339Nano, ts.ChildText(NSWSU, "Expires"))
	if err != nil {
		return fmt.Errorf("wssec: bad Expires: %w", err)
	}
	const skew = 30 * time.Second
	if now.Add(skew).Before(created) {
		return fmt.Errorf("wssec: message from the future (created %s)", created)
	}
	if now.After(expires.Add(skew)) {
		return fmt.Errorf("wssec: message expired at %s", expires)
	}
	return nil
}

// SecurityHeaderName is the "namespace local" key for mustUnderstand
// accounting in the container.
const SecurityHeaderName = NSWSE + " Security"

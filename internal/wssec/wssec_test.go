package wssec

import (
	"strings"
	"sync"
	"testing"
	"time"

	"altstacks/internal/certs"
	"altstacks/internal/soap"
	"altstacks/internal/xmlutil"
)

// Shared PKI: RSA keygen is expensive, build once per test binary.
var (
	pkiOnce sync.Once
	ca      *certs.Authority
	alice   *certs.Identity
	mallory *certs.Authority
	eve     *certs.Identity
)

func pkiInit() {
	var err error
	if ca, err = certs.NewAuthority(); err != nil {
		panic(err)
	}
	if alice, err = ca.Issue("CN=alice"); err != nil {
		panic(err)
	}
	if mallory, err = certs.NewAuthority(); err != nil {
		panic(err)
	}
	if eve, err = mallory.Issue("CN=eve"); err != nil {
		panic(err)
	}
}

func pki(t *testing.T) (*certs.Authority, *certs.Identity) {
	t.Helper()
	pkiOnce.Do(pkiInit)
	return ca, alice
}

func signedEnvelope(t *testing.T) *soap.Envelope {
	t.Helper()
	_, id := pki(t)
	env := soap.New(xmlutil.New("urn:c", "Set").Add(xmlutil.NewText("urn:c", "value", "5")))
	if err := NewSigner(id).Sign(env); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestSignVerifyRoundTrip(t *testing.T) {
	ca, id := pki(t)
	env := signedEnvelope(t)
	// Simulate wire transit.
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	cert, err := NewVerifier(ca.Pool()).Verify(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Subject.CommonName != id.Cert.Subject.CommonName {
		t.Fatalf("signer CN = %q", cert.Subject.CommonName)
	}
}

func TestSecurityHeaderIsMustUnderstand(t *testing.T) {
	env := signedEnvelope(t)
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	names := parsed.MustUnderstandNames()
	if len(names) != 1 || names[0] != SecurityHeaderName {
		t.Fatalf("mustUnderstand = %v", names)
	}
}

func TestTamperedBodyRejected(t *testing.T) {
	ca, _ := pki(t)
	env := signedEnvelope(t)
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	parsed.Body.Child("urn:c", "value").Text = "500000"
	if _, err := NewVerifier(ca.Pool()).Verify(parsed); err == nil {
		t.Fatal("tampered body verified")
	} else if !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestTamperedSignatureRejected(t *testing.T) {
	ca, _ := pki(t)
	env := signedEnvelope(t)
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	sec := parsed.Header(NSWSE, "Security")
	sig := sec.Child(NSDS, "Signature").Child(NSDS, "SignatureValue")
	sig.Text = "AAAA" + sig.Text[4:]
	if _, err := NewVerifier(ca.Pool()).Verify(parsed); err == nil {
		t.Fatal("tampered signature verified")
	}
}

func TestUntrustedSignerRejected(t *testing.T) {
	ca, _ := pki(t)
	env := soap.New(xmlutil.New("urn:c", "Get"))
	if err := NewSigner(eve).Sign(env); err != nil {
		t.Fatal(err)
	}
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVerifier(ca.Pool()).Verify(parsed); err == nil {
		t.Fatal("certificate from foreign CA accepted")
	} else if !strings.Contains(err.Error(), "untrusted") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestUnsignedMessageRejected(t *testing.T) {
	ca, _ := pki(t)
	env := soap.New(xmlutil.New("urn:c", "Get"))
	if _, err := NewVerifier(ca.Pool()).Verify(env); err == nil {
		t.Fatal("unsigned message verified")
	}
}

func TestExpiredTimestampRejected(t *testing.T) {
	ca, _ := pki(t)
	env := signedEnvelope(t)
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(ca.Pool())
	v.Now = func() time.Time { return time.Now().Add(time.Hour) }
	if _, err := v.Verify(parsed); err == nil {
		t.Fatal("expired message verified")
	} else if !strings.Contains(err.Error(), "expired") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestFutureTimestampRejected(t *testing.T) {
	ca, _ := pki(t)
	env := signedEnvelope(t)
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(ca.Pool())
	v.Now = func() time.Time { return time.Now().Add(-time.Hour) }
	if _, err := v.Verify(parsed); err == nil {
		t.Fatal("future-dated message verified")
	}
}

func TestRefusesToSignEmptyEnvelope(t *testing.T) {
	_, id := pki(t)
	if err := NewSigner(id).Sign(&soap.Envelope{}); err == nil {
		t.Fatal("signed an empty envelope")
	}
}

func TestSignedFaultVerifies(t *testing.T) {
	ca, id := pki(t)
	env := &soap.Envelope{Fault: soap.Faultf(soap.FaultServer, "backend down")}
	if err := NewSigner(id).Sign(env); err != nil {
		t.Fatal(err)
	}
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.IsFault() {
		t.Fatal("fault lost in transit")
	}
	if _, err := NewVerifier(ca.Pool()).Verify(parsed); err != nil {
		t.Fatalf("signed fault failed verification: %v", err)
	}
}

func TestHeaderMutationDoesNotBreakBodySignature(t *testing.T) {
	// WS-Addressing headers added by intermediaries must not invalidate
	// the body signature: only Body and Timestamp are covered.
	ca, _ := pki(t)
	env := signedEnvelope(t)
	env.AddHeader(xmlutil.NewText("urn:extra", "Via", "gateway-1"))
	parsed, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVerifier(ca.Pool()).Verify(parsed); err != nil {
		t.Fatalf("added header broke verification: %v", err)
	}
}

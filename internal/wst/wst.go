// Package wst implements WS-Transfer, the REST-style half of the
// paper's alternative stack: "only four operations (in the REST or
// CRUD pattern: Create, Retrieve, Update, Delete)" (§2.2).
//
// Faithful to the paper's implementation experience (§3.2):
//
//   - Resources are XML documents in an XML database (Xindice there,
//     xmldb here); "the Create() operation names the resource by
//     assigning a new resource id (by default, GUID)", embedded in the
//     returned EPR as a reference property.
//   - The service may modify the representation the client presented;
//     when it does, Create returns the new representation.
//   - Bodies are raw xsd:any XML: there is no input/output schema, so
//     "every client must know the 'type' of objects that the service
//     understands" — the Go API deals in xmlutil elements, never typed
//     structs, and schema knowledge is hard-coded in clients exactly as
//     the paper describes.
//   - Out-of-band resources are supported: "our service-side
//     implementation had to be a little more sophisticated to deal with
//     legitimate operations on resources (e.g., Get()) for which a
//     corresponding Create() had not been previously issued".
//   - A service may host multiple resource types and interpret the
//     same verb differently by EPR content ("WS-Transfer is silent on
//     this issue, potentially allowing multiple types of resources to
//     be associated with a single service", §2.3) — the Hooks seam is
//     where Grid-in-a-Box's mode-prefixed EPRs plug in.
//
// Note what is deliberately absent: lifetime management ("there is no
// lifetime management functionality since it is not defined in the
// spec", §3.2). Reservation cleanup in the WS-Transfer Grid-in-a-Box
// must therefore be done manually, which Figure 6's "Unreserve
// Resource" row measures.
package wst

import (
	"errors"
	"fmt"

	"altstacks/internal/container"
	"altstacks/internal/soap"
	"altstacks/internal/uuid"
	"altstacks/internal/wsa"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

// NS is the WS-Transfer September 2004 namespace.
const NS = "http://schemas.xmlsoap.org/ws/2004/09/transfer"

// Action URIs for the four operations.
const (
	ActionCreate = NS + "/Create"
	ActionGet    = NS + "/Get"
	ActionPut    = NS + "/Put"
	ActionDelete = NS + "/Delete"
)

// Hooks customize how a service maps the four verbs onto its resource
// semantics. Every hook is optional; nil hooks give plain document
// CRUD (the counter service uses exactly that: "Create() stores this
// XML document without modification into Xindice", §4.1.2).
type Hooks struct {
	// OnCreate inspects/modifies the presented representation and
	// chooses the resource id. Return id "" to keep the default GUID.
	// Returning a non-nil out element marks the representation as
	// modified, so Create's response carries it back to the client.
	OnCreate func(ctx *container.Ctx, rep *xmlutil.Element) (id string, out *xmlutil.Element, err error)
	// OnGet produces the representation returned to the client. stored
	// is nil for out-of-band ids the database has never seen.
	OnGet func(ctx *container.Ctx, id string, stored *xmlutil.Element) (*xmlutil.Element, error)
	// OnPut merges the replacement representation with the stored
	// document and returns what to store. stored is nil for out-of-band
	// ids.
	OnPut func(ctx *container.Ctx, id string, stored, rep *xmlutil.Element) (*xmlutil.Element, error)
	// OnDelete runs before the document is removed — the seam where a
	// service decides whether deleting the representation also
	// terminates an active entity such as a running process (the
	// resource-vs-representation ambiguity of §3.2).
	OnDelete func(ctx *container.Ctx, id string, stored *xmlutil.Element) error
}

// Service is one WS-Transfer resource service/factory over a database
// collection.
type Service struct {
	DB         *xmldb.DB
	Collection string
	// RefSpace/RefLocal name the EPR reference property carrying the
	// resource id.
	RefSpace, RefLocal string
	// Endpoint supplies the service address for minted EPRs.
	Endpoint func() string
	// Hooks customize verb semantics.
	Hooks Hooks
	// AllowOutOfBand permits Get/Put/Delete on ids with no stored
	// document (handled entirely by hooks). Without hooks such
	// operations fault.
	AllowOutOfBand bool
}

// ContainerService exposes the four operations at the given path.
func (s *Service) ContainerService(path string) *container.Service {
	return &container.Service{
		Path: path,
		Actions: map[string]container.ActionFunc{
			ActionCreate: s.create,
			ActionGet:    s.get,
			ActionPut:    s.put,
			ActionDelete: s.delete,
		},
	}
}

// EPRFor mints the EPR for a resource id.
func (s *Service) EPRFor(id string) wsa.EPR {
	return wsa.NewEPR(s.Endpoint()).WithProperty(s.RefSpace, s.RefLocal, id)
}

func (s *Service) resourceID(env *soap.Envelope) (string, error) {
	id, ok := wsa.ResourceID(env, s.RefSpace, s.RefLocal)
	if !ok || id == "" {
		return "", soap.Faultf(soap.FaultClient,
			"request does not identify a resource (missing %s reference property)", s.RefLocal)
	}
	return id, nil
}

func (s *Service) create(ctx *container.Ctx) (*xmlutil.Element, error) {
	rep := ctx.Envelope.Body
	if rep == nil {
		return nil, soap.Faultf(soap.FaultClient, "Create carries no representation")
	}
	id := uuid.NewString()
	var modified *xmlutil.Element
	if s.Hooks.OnCreate != nil {
		hid, out, err := s.Hooks.OnCreate(ctx, rep)
		if err != nil {
			return nil, err
		}
		if hid != "" {
			id = hid
		}
		modified = out
	}
	store := rep
	if modified != nil {
		store = modified
	}
	if err := s.DB.CreateContext(ctx.Context, s.Collection, id, store); err != nil {
		if errors.Is(err, xmldb.ErrExists) {
			return nil, soap.Faultf(soap.FaultClient, "resource %q already exists", id)
		}
		return nil, err
	}
	// Spec response: the new resource's EPR; plus the representation
	// when the service changed it ("together with the EPR of the new
	// resource, Create() returns a new resource representation to the
	// client if the resource representation is modified", §3.2).
	resp := xmlutil.New(NS, "ResourceCreated").Add(
		s.EPRFor(id).Element(wsa.NS, "EndpointReference"))
	if modified != nil {
		resp.Add(xmlutil.New(NS, "Representation").Add(modified.Clone()))
	}
	return resp, nil
}

func (s *Service) get(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := s.resourceID(ctx.Envelope)
	if err != nil {
		return nil, err
	}
	stored, err := s.DB.GetContext(ctx.Context, s.Collection, id)
	if err != nil && !errors.Is(err, xmldb.ErrNotFound) {
		return nil, err
	}
	if stored == nil && !s.AllowOutOfBand {
		return nil, soap.Faultf(soap.FaultClient, "no resource %q", id)
	}
	if s.Hooks.OnGet != nil {
		return s.Hooks.OnGet(ctx, id, stored)
	}
	if stored == nil {
		return nil, soap.Faultf(soap.FaultClient, "no resource %q", id)
	}
	return stored, nil
}

func (s *Service) put(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := s.resourceID(ctx.Envelope)
	if err != nil {
		return nil, err
	}
	rep := ctx.Envelope.Body
	if rep == nil {
		return nil, soap.Faultf(soap.FaultClient, "Put carries no representation")
	}
	// The read-before-write the paper measured: "setting the counter's
	// value causes the old representation of the counter's resource to
	// be read from the database and updated with the new value before
	// being stored" (§4.1.3). There is no resource cache on this stack.
	stored, err := s.DB.GetContext(ctx.Context, s.Collection, id)
	if err != nil && !errors.Is(err, xmldb.ErrNotFound) {
		return nil, err
	}
	if stored == nil && !s.AllowOutOfBand {
		return nil, soap.Faultf(soap.FaultClient, "no resource %q", id)
	}
	out := rep
	if s.Hooks.OnPut != nil {
		out, err = s.Hooks.OnPut(ctx, id, stored, rep)
		if err != nil {
			return nil, err
		}
	}
	if err := s.DB.PutContext(ctx.Context, s.Collection, id, out); err != nil {
		return nil, err
	}
	return xmlutil.New(NS, "PutResponse"), nil
}

func (s *Service) delete(ctx *container.Ctx) (*xmlutil.Element, error) {
	id, err := s.resourceID(ctx.Envelope)
	if err != nil {
		return nil, err
	}
	stored, err := s.DB.GetContext(ctx.Context, s.Collection, id)
	if err != nil && !errors.Is(err, xmldb.ErrNotFound) {
		return nil, err
	}
	if stored == nil && !s.AllowOutOfBand {
		return nil, soap.Faultf(soap.FaultClient, "no resource %q", id)
	}
	if s.Hooks.OnDelete != nil {
		if err := s.Hooks.OnDelete(ctx, id, stored); err != nil {
			return nil, err
		}
	}
	if stored != nil {
		if err := s.DB.DeleteContext(ctx.Context, s.Collection, id); err != nil && !errors.Is(err, xmldb.ErrNotFound) {
			return nil, err
		}
	}
	return xmlutil.New(NS, "DeleteResponse"), nil
}

// Client issues the four WS-Transfer operations. Its arguments and
// return values are raw XML elements: "since WS-Transfer deals in
// terms of raw XML, the arguments and return values for the
// WS-Transfer proxy methods are arrays of XML elements" (§4.1.3).
type Client struct {
	C *container.Client
}

// Create presents a representation to the factory; it returns the new
// resource's EPR and, when the service modified the representation,
// the modified version (nil otherwise).
func (c *Client) Create(factory wsa.EPR, rep *xmlutil.Element) (wsa.EPR, *xmlutil.Element, error) {
	resp, err := c.C.Call(factory, ActionCreate, rep)
	if err != nil {
		return wsa.EPR{}, nil, err
	}
	eprEl := resp.Child(wsa.NS, "EndpointReference")
	if eprEl == nil {
		return wsa.EPR{}, nil, fmt.Errorf("wst: CreateResponse carries no EndpointReference")
	}
	epr, err := wsa.ParseEPR(eprEl)
	if err != nil {
		return wsa.EPR{}, nil, err
	}
	var modified *xmlutil.Element
	if m := resp.Child(NS, "Representation"); m != nil && len(m.Children) > 0 {
		modified = m.Children[0].Clone()
	}
	return epr, modified, nil
}

// Get fetches a one-time snapshot of the resource representation.
func (c *Client) Get(resource wsa.EPR) (*xmlutil.Element, error) {
	return c.C.Call(resource, ActionGet, xmlutil.New(NS, "Get"))
}

// Put replaces the representation.
func (c *Client) Put(resource wsa.EPR, rep *xmlutil.Element) error {
	_, err := c.C.Call(resource, ActionPut, rep)
	return err
}

// Delete removes the resource.
func (c *Client) Delete(resource wsa.EPR) error {
	_, err := c.C.Call(resource, ActionDelete, xmlutil.New(NS, "Delete"))
	return err
}

package wst

import (
	"strings"
	"testing"

	"altstacks/internal/container"
	"altstacks/internal/soap"
	"altstacks/internal/wsa"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

const nsC = "urn:counter"

func startService(t *testing.T, hooks Hooks, oob bool) (*Service, *Client, wsa.EPR) {
	t.Helper()
	c := container.New(container.SecurityNone)
	svc := &Service{
		DB:             xmldb.NewMemory(xmldb.CostModel{}),
		Collection:     "counters",
		RefSpace:       nsC,
		RefLocal:       "ResourceID",
		Endpoint:       func() string { return c.BaseURL() + "/counter" },
		Hooks:          hooks,
		AllowOutOfBand: oob,
	}
	c.Register(svc.ContainerService("/counter"))
	if _, err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return svc, &Client{C: container.NewClient(container.ClientConfig{})}, c.EPR("/counter")
}

func counterRep(v string) *xmlutil.Element {
	return xmlutil.New(nsC, "Counter").Add(xmlutil.NewText(nsC, "Value", v))
}

func TestCRUDLifecycle(t *testing.T) {
	_, cl, factory := startService(t, Hooks{}, false)
	epr, modified, err := cl.Create(factory, counterRep("0"))
	if err != nil {
		t.Fatal(err)
	}
	if modified != nil {
		t.Fatalf("unmodified create returned representation %s", modified)
	}
	id, ok := epr.Property(nsC, "ResourceID")
	if !ok || id == "" {
		t.Fatalf("EPR carries no GUID reference property: %+v", epr)
	}
	// Get returns the document with the same schema given to Create
	// (paper §4.1.2: "the client expects the schema of the return value
	// from Get() to be the same as the document given to Create()").
	got, err := cl.Get(epr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name.Local != "Counter" || got.ChildText(nsC, "Value") != "0" {
		t.Fatalf("get = %s", got)
	}
	if err := cl.Put(epr, counterRep("41")); err != nil {
		t.Fatal(err)
	}
	got, _ = cl.Get(epr)
	if got.ChildText(nsC, "Value") != "41" {
		t.Fatalf("after put: %s", got)
	}
	if err := cl.Delete(epr); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(epr); err == nil {
		t.Fatal("get after delete succeeded")
	}
	if err := cl.Delete(epr); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestPutPaysReadBeforeWrite(t *testing.T) {
	// The paper's §4.1.3 finding: the WS-Transfer Set pays a database
	// read before its write (no resource cache on this stack).
	svc, cl, factory := startService(t, Hooks{}, false)
	epr, _, err := cl.Create(factory, counterRep("0"))
	if err != nil {
		t.Fatal(err)
	}
	before := svc.DB.Stats()
	if err := cl.Put(epr, counterRep("1")); err != nil {
		t.Fatal(err)
	}
	after := svc.DB.Stats()
	if after.Reads != before.Reads+1 {
		t.Fatalf("Put performed %d reads, want exactly 1", after.Reads-before.Reads)
	}
	if after.Updates != before.Updates+1 {
		t.Fatalf("Put performed %d writes, want 1", after.Updates-before.Updates)
	}
}

func TestCreateWithModifyingHook(t *testing.T) {
	hooks := Hooks{
		OnCreate: func(ctx *container.Ctx, rep *xmlutil.Element) (string, *xmlutil.Element, error) {
			out := rep.Clone()
			out.Add(xmlutil.NewText(nsC, "Normalized", "true"))
			return "chosen-id", out, nil
		},
	}
	_, cl, factory := startService(t, hooks, false)
	epr, modified, err := cl.Create(factory, counterRep("5"))
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := epr.Property(nsC, "ResourceID"); id != "chosen-id" {
		t.Fatalf("id = %q", id)
	}
	if modified == nil || modified.ChildText(nsC, "Normalized") != "true" {
		t.Fatalf("modified representation not returned: %v", modified)
	}
	got, _ := cl.Get(epr)
	if got.ChildText(nsC, "Normalized") != "true" {
		t.Fatal("stored document is not the modified one")
	}
}

func TestDuplicateCreateFaults(t *testing.T) {
	hooks := Hooks{
		OnCreate: func(ctx *container.Ctx, rep *xmlutil.Element) (string, *xmlutil.Element, error) {
			return "same-id", nil, nil
		},
	}
	_, cl, factory := startService(t, hooks, false)
	if _, _, err := cl.Create(factory, counterRep("1")); err != nil {
		t.Fatal(err)
	}
	_, _, err := cl.Create(factory, counterRep("2"))
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfBandGet(t *testing.T) {
	// Paper §3.2: a Get may be legitimate although the entry in the
	// database was not added by calling Create().
	hooks := Hooks{
		OnGet: func(ctx *container.Ctx, id string, stored *xmlutil.Element) (*xmlutil.Element, error) {
			if stored != nil {
				return stored, nil
			}
			// Synthesize the representation for an out-of-band entity.
			return xmlutil.NewText(nsC, "Synthesized", id), nil
		},
	}
	svc, cl, _ := startService(t, hooks, true)
	epr := svc.EPRFor("made-elsewhere")
	got, err := cl.Get(epr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name.Local != "Synthesized" || got.TrimText() != "made-elsewhere" {
		t.Fatalf("got = %s", got)
	}
}

func TestOutOfBandRejectedWithoutFlag(t *testing.T) {
	svc, cl, _ := startService(t, Hooks{}, false)
	epr := svc.EPRFor("never-created")
	if _, err := cl.Get(epr); err == nil {
		t.Fatal("get on unknown id succeeded")
	}
	if err := cl.Put(epr, counterRep("1")); err == nil {
		t.Fatal("put on unknown id succeeded")
	}
}

func TestOutOfBandPutCreates(t *testing.T) {
	svc, cl, _ := startService(t, Hooks{}, true)
	epr := svc.EPRFor("oob-id")
	if err := cl.Put(epr, counterRep("7")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(epr)
	if err != nil || got.ChildText(nsC, "Value") != "7" {
		t.Fatalf("get after oob put: %v %v", got, err)
	}
}

func TestDeleteHookDistinguishesResourceFromRepresentation(t *testing.T) {
	// §3.2's Delete() ambiguity: the service decides whether removing
	// the representation terminates the active entity.
	terminated := ""
	hooks := Hooks{
		OnDelete: func(ctx *container.Ctx, id string, stored *xmlutil.Element) error {
			if stored != nil && stored.ChildText(nsC, "Value") == "running" {
				terminated = id
			}
			return nil
		},
	}
	_, cl, factory := startService(t, hooks, false)
	epr, _, err := cl.Create(factory, counterRep("running"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(epr); err != nil {
		t.Fatal(err)
	}
	id, _ := epr.Property(nsC, "ResourceID")
	if terminated != id {
		t.Fatal("delete hook did not observe the stored representation")
	}
}

func TestDeleteHookVeto(t *testing.T) {
	hooks := Hooks{
		OnDelete: func(ctx *container.Ctx, id string, stored *xmlutil.Element) error {
			return soap.Faultf(soap.FaultClient, "resource is busy")
		},
	}
	_, cl, factory := startService(t, hooks, false)
	epr, _, err := cl.Create(factory, counterRep("1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete(epr); err == nil {
		t.Fatal("vetoed delete succeeded")
	}
	if _, err := cl.Get(epr); err != nil {
		t.Fatal("vetoed delete removed the resource anyway")
	}
}

func TestModeSwitchingByEPRContent(t *testing.T) {
	// The unified Resource Allocation service pattern (§4.2.2): "the
	// WS-Transfer Get() operation does different things" depending on
	// the EPR's initial character.
	hooks := Hooks{
		// Stored documents get non-colliding ids so the "1" mode prefix
		// stays unambiguous (the services using this pattern control
		// their id alphabets the same way).
		OnCreate: func(ctx *container.Ctx, rep *xmlutil.Element) (string, *xmlutil.Element, error) {
			return "site-x", nil, nil
		},
		OnGet: func(ctx *container.Ctx, id string, stored *xmlutil.Element) (*xmlutil.Element, error) {
			if strings.HasPrefix(id, "1") {
				return xmlutil.NewText(nsC, "AvailableResources", "node-a node-b"), nil
			}
			if stored == nil {
				return nil, soap.Faultf(soap.FaultClient, "no resource %q", id)
			}
			return stored, nil
		},
	}
	svc, cl, factory := startService(t, hooks, true)
	// Query mode: id starting with "1".
	got, err := cl.Get(svc.EPRFor("1query"))
	if err != nil || got.Name.Local != "AvailableResources" {
		t.Fatalf("query mode: %v %v", got, err)
	}
	// Document mode: a real stored resource.
	epr, _, err := cl.Create(factory, counterRep("9"))
	if err != nil {
		t.Fatal(err)
	}
	got, err = cl.Get(epr)
	if err != nil || got.ChildText(nsC, "Value") != "9" {
		t.Fatalf("document mode: %v %v", got, err)
	}
}

func TestMissingReferencePropertyFaults(t *testing.T) {
	_, cl, factory := startService(t, Hooks{}, false)
	// factory EPR has no resource id — Get must fault, Create must work.
	if _, err := cl.Get(factory); err == nil {
		t.Fatal("get without reference property succeeded")
	}
	if _, _, err := cl.Create(factory, counterRep("0")); err != nil {
		t.Fatal(err)
	}
}

func TestCreateWithoutBodyFaults(t *testing.T) {
	_, cl, factory := startService(t, Hooks{}, false)
	_, err := cl.C.Call(factory, ActionCreate, nil)
	if err == nil {
		t.Fatal("empty create succeeded")
	}
}

package xmldb

import (
	"fmt"
	"testing"

	"altstacks/internal/xmlutil"
)

// benchCollection loads n counter-style documents into a fresh
// zero-cost database (the CostModel pause would swamp the Go-side work
// this benchmark isolates; production paths charge it on top).
func benchCollection(b *testing.B, n int) *DB {
	b.Helper()
	db := NewMemory(CostModel{})
	for i := 0; i < n; i++ {
		doc := xmlutil.New("", "Counter").Add(
			xmlutil.NewText("", "cv", fmt.Sprint(i)),
			xmlutil.NewText("", "owner", fmt.Sprintf("CN=user-%03d", i%16)),
		)
		if err := db.Create("c", fmt.Sprintf("id-%04d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkQueryScan is the QueryResourceProperties workload: one
// XPath-lite expression evaluated across every document in a
// collection, repeatedly, with the collection unchanged between scans
// — the shape under which the parsed-document and compiled-expression
// caches should eliminate all per-scan recompilation and re-parsing.
func BenchmarkQueryScan(b *testing.B) {
	db := benchCollection(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, err := db.Query("c", "/Counter[cv>=50]")
		if err != nil {
			b.Fatal(err)
		}
		if len(hits) != 50 {
			b.Fatalf("hits = %d", len(hits))
		}
	}
}

// BenchmarkGetHot measures repeated reads of one document from an
// unchanged collection.
func BenchmarkGetHot(b *testing.B) {
	db := benchCollection(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get("c", "id-0003"); err != nil {
			b.Fatal(err)
		}
	}
}

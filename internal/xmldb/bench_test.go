package xmldb

import (
	"fmt"
	"sync/atomic"
	"testing"

	"altstacks/internal/xmlutil"
)

// benchCollection loads n counter-style documents into a fresh
// zero-cost database (the CostModel pause would swamp the Go-side work
// this benchmark isolates; production paths charge it on top).
func benchCollection(b *testing.B, n int) *DB {
	b.Helper()
	db := NewMemory(CostModel{})
	for i := 0; i < n; i++ {
		doc := xmlutil.New("", "Counter").Add(
			xmlutil.NewText("", "cv", fmt.Sprint(i)),
			xmlutil.NewText("", "owner", fmt.Sprintf("CN=user-%03d", i%16)),
		)
		if err := db.Create("c", fmt.Sprintf("id-%04d", i), doc); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkQueryScan is the QueryResourceProperties workload: one
// XPath-lite expression evaluated across every document in a
// collection, repeatedly, with the collection unchanged between scans
// — the shape under which the parsed-document and compiled-expression
// caches should eliminate all per-scan recompilation and re-parsing.
func BenchmarkQueryScan(b *testing.B) {
	db := benchCollection(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits, err := db.Query("c", "/Counter[cv>=50]")
		if err != nil {
			b.Fatal(err)
		}
		if len(hits) != 50 {
			b.Fatalf("hits = %d", len(hits))
		}
	}
}

// BenchmarkGetHot measures repeated reads of one document from an
// unchanged collection.
func BenchmarkGetHot(b *testing.B) {
	db := benchCollection(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get("c", "id-0003"); err != nil {
			b.Fatal(err)
		}
	}
}

// subSizedDoc builds a document the size of a subscription resource
// (~1KB marshaled: EPR, topic, health ledger, policy blocks) — what
// the Notify path actually stores and re-parses.
func subSizedDoc(n int) *xmlutil.Element {
	doc := xmlutil.New("", "Counter").Add(
		xmlutil.NewText("", "cv", fmt.Sprint(n)),
	)
	for i := 0; i < 24; i++ {
		doc.Add(xmlutil.NewText("", fmt.Sprintf("field%02d", i),
			fmt.Sprintf("value-%d-%d-abcdefghijklmnop", n, i)))
	}
	return doc
}

// splitmix64 decorrelates op, collection, and document choices without
// math/rand locking inside the measured loop.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BenchmarkParallelMixed is the storage-layer contention benchmark: at
// least 8 client goroutines issuing a Notify-path-shaped mix — point
// reads, selective collection scans, health-write-style updates,
// presence probes, listings — against subscription-sized documents
// with a zero CostModel, so every nanosecond measured is this stack's
// own lock, cache, and parse overhead.
//
// This is the workload on which the single-lock, whole-collection-
// invalidation design collapsed: every update evicted the entire
// collection's parsed docs, so each scan re-parsed ~all documents.
// Per-document generations keep scans cache-hot (the before/after
// table lives in EXPERIMENTS.md). The sharded variant additionally
// removes backend RWMutex contention, which shows up with core count.
func BenchmarkParallelMixed(b *testing.B) {
	for _, variant := range []struct {
		name string
		mk   func() *DB
	}{
		{"memory", func() *DB { return NewMemory(CostModel{}) }},
		{"sharded-4", func() *DB { return New(NewShardedMemory(4), CostModel{}) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			const cols, docsPer = 4, 128
			db := variant.mk()
			for c := 0; c < cols; c++ {
				for i := 0; i < docsPer; i++ {
					if err := db.Create(fmt.Sprintf("col-%d", c), fmt.Sprintf("id-%04d", i), subSizedDoc(i)); err != nil {
						b.Fatal(err)
					}
				}
			}
			var gseed atomic.Uint64
			b.SetParallelism(8) // >= 8 goroutines even on a 1-core runner
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				state := splitmix64(gseed.Add(1) * 0x9e3779b97f4a7c15)
				for pb.Next() {
					state = splitmix64(state)
					r := state
					col := fmt.Sprintf("col-%d", r%cols)
					id := fmt.Sprintf("id-%04d", (r>>8)%docsPer)
					switch pick := (r >> 32) % 20; {
					case pick < 4: // 20% point reads
						if _, err := db.Get(col, id); err != nil {
							b.Fatal(err)
						}
					case pick < 11: // 35% selective collection scans
						if _, err := db.Query(col, "/Counter[cv>=127]"); err != nil {
							b.Fatal(err)
						}
					case pick < 18: // 35% updates (health write-through)
						// cv stays under the scan threshold so the match
						// set — and with it per-scan clone cost — is
						// stable for the benchmark's whole run.
						if err := db.Update(col, id, subSizedDoc(int(r%100))); err != nil {
							b.Fatal(err)
						}
					case pick < 19: // 5% presence probes
						if _, err := db.Exists(col, id); err != nil {
							b.Fatal(err)
						}
					default: // 5% listings
						if _, err := db.IDs(col); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}

package xmldb

import (
	"sync"

	"altstacks/internal/obs"
	"altstacks/internal/xmlutil"
	"altstacks/internal/xpathlite"
)

// Cache metric families: hit/miss/evict events per cache, process-wide
// across every DB instance (per-instance effectiveness stays visible
// through Stats.Parses).
var (
	docCacheHits    = obs.NewCounter("ogsa_xmldb_cache_events_total", `cache="doc",event="hit"`, "xmldb cache events by cache and kind")
	docCacheMisses  = obs.NewCounter("ogsa_xmldb_cache_events_total", `cache="doc",event="miss"`, "xmldb cache events by cache and kind")
	docCacheEvicts  = obs.NewCounter("ogsa_xmldb_cache_events_total", `cache="doc",event="evict"`, "xmldb cache events by cache and kind")
	pathCacheHits   = obs.NewCounter("ogsa_xmldb_cache_events_total", `cache="path",event="hit"`, "xmldb cache events by cache and kind")
	pathCacheMisses = obs.NewCounter("ogsa_xmldb_cache_events_total", `cache="path",event="miss"`, "xmldb cache events by cache and kind")
	pathCacheEvicts = obs.NewCounter("ogsa_xmldb_cache_events_total", `cache="path",event="evict"`, "xmldb cache events by cache and kind")
)

// cacheStripes is the lock-stripe count for both caches. Power of two
// so stripe selection is a mask, sized so that even a core-count worth
// of concurrent clients rarely collides on one stripe lock.
const cacheStripes = 16

// genPruneFactor bounds the per-document generation map: when a stripe
// tracks this many generations per cached slot, generations of
// non-resident documents are dropped (guarded by the stripe epoch, so
// an in-flight parse can never publish against a recycled counter).
const genPruneFactor = 4

// keyHash is FNV-1a over collection, a NUL separator, and id — shared
// by cache striping and shard routing so both stay allocation-free.
func keyHash(collection, id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(collection); i++ {
		h ^= uint64(collection[i])
		h *= prime64
	}
	h ^= 0 // separator: ("ab","c") and ("a","bc") hash apart
	h *= prime64
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

type docKey struct{ collection, id string }

// docEntry is one cached parsed document. ref is the CLOCK
// second-chance bit: set on every hit, cleared (once) by the sweeping
// hand, so a document read since the last sweep survives cap pressure
// and a cold one is evicted.
type docEntry struct {
	gen uint64
	doc *xmlutil.Element // shared master copy; callers receive clones
	ref bool
}

// docStripe is one lock stripe of the parsed-document cache. It owns
// the per-document generation counters for its keys: a write bumps one
// document's generation, invalidating that entry alone — never the
// rest of the collection.
type docStripe struct {
	mu      sync.Mutex
	epoch   uint64 // bumped by generation pruning; guards in-flight fills
	gens    map[docKey]uint64
	entries map[docKey]*docEntry
	ring    []docKey // CLOCK ring over resident keys
	hand    int
}

// docCache is the lock-striped parsed-document cache.
type docCache struct {
	stripeCap int
	stripes   [cacheStripes]docStripe
}

func newDocCache(totalCap int) *docCache {
	c := &docCache{stripeCap: totalCap / cacheStripes}
	if c.stripeCap < 1 {
		c.stripeCap = 1
	}
	for i := range c.stripes {
		c.stripes[i].gens = map[docKey]uint64{}
		c.stripes[i].entries = map[docKey]*docEntry{}
	}
	return c
}

func (c *docCache) stripe(k docKey) *docStripe {
	return &c.stripes[keyHash(k.collection, k.id)&(cacheStripes-1)]
}

// lookup returns the cached master tree when the entry's generation is
// current. The returned gen and epoch identify the version observed;
// fill accepts the parse result only while both still match.
func (c *docCache) lookup(k docKey) (doc *xmlutil.Element, gen, epoch uint64, hit bool) {
	s := c.stripe(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	gen, epoch = s.gens[k], s.epoch
	if e, ok := s.entries[k]; ok && e.gen == gen && e.doc != nil {
		e.ref = true
		docCacheHits.Inc()
		return e.doc, gen, epoch, true
	}
	docCacheMisses.Inc()
	return nil, gen, epoch, false
}

// fill caches doc under k unless a write (generation bump) or a prune
// (epoch bump) raced the parse that produced it.
func (c *docCache) fill(k docKey, gen, epoch uint64, doc *xmlutil.Element) {
	s := c.stripe(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gens[k] != gen || s.epoch != epoch {
		return
	}
	if e, ok := s.entries[k]; ok {
		e.gen, e.doc, e.ref = gen, doc, true
		return
	}
	if len(s.entries) >= c.stripeCap {
		s.evictOne()
	}
	s.entries[k] = &docEntry{gen: gen, doc: doc, ref: true}
	s.ring = append(s.ring, k)
}

// evictOne advances the CLOCK hand until it finds an entry not
// referenced since its last pass, and evicts it. Called with the
// stripe lock held and at least one resident entry.
func (s *docStripe) evictOne() {
	for {
		k := s.ring[s.hand]
		e := s.entries[k]
		if e.ref {
			e.ref = false
			s.hand = (s.hand + 1) % len(s.ring)
			continue
		}
		delete(s.entries, k)
		last := len(s.ring) - 1
		s.ring[s.hand] = s.ring[last]
		s.ring = s.ring[:last]
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		docCacheEvicts.Inc()
		return
	}
}

// bump invalidates the one document k: its generation moves on and the
// resident tree (if any) is released. Other documents in the same
// collection keep their cached parses — this is the per-document
// invalidation that whole-collection generation bumping lacked.
func (c *docCache) bump(k docKey) {
	s := c.stripe(k)
	s.mu.Lock()
	s.gens[k]++
	if e, ok := s.entries[k]; ok {
		e.doc = nil // free the stale tree; the slot refills in place
		e.ref = false
	}
	if len(s.gens) >= genPruneFactor*c.stripeCap && len(s.gens) > 64 {
		s.prune()
	}
	s.mu.Unlock()
}

// prune drops generation counters for documents no longer resident.
// The epoch bump makes any parse in flight under an old counter
// unpublishable, so recycling a counter to zero is safe.
func (s *docStripe) prune() {
	s.epoch++
	for k := range s.gens {
		if _, resident := s.entries[k]; !resident {
			delete(s.gens, k)
		}
	}
}

// pathEntry is one cached compiled XPath-lite expression.
type pathEntry struct {
	path *xpathlite.Path
	ref  bool
}

// pathStripe is one lock stripe of the compiled-expression cache, with
// the same CLOCK second-chance discipline as the document cache.
type pathStripe struct {
	mu      sync.Mutex
	entries map[string]*pathEntry
	ring    []string
	hand    int
}

// pathCache is the lock-striped compiled-expression cache. Entries are
// immutable once compiled, so there is no generation machinery.
type pathCache struct {
	stripeCap int
	stripes   [cacheStripes]pathStripe
}

func newPathCache(totalCap int) *pathCache {
	c := &pathCache{stripeCap: totalCap / cacheStripes}
	if c.stripeCap < 1 {
		c.stripeCap = 1
	}
	for i := range c.stripes {
		c.stripes[i].entries = map[string]*pathEntry{}
	}
	return c
}

func (c *pathCache) stripe(expr string) *pathStripe {
	return &c.stripes[keyHash(expr, "")&(cacheStripes-1)]
}

func (c *pathCache) lookup(expr string) (*xpathlite.Path, bool) {
	s := c.stripe(expr)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[expr]; ok {
		e.ref = true
		pathCacheHits.Inc()
		return e.path, true
	}
	pathCacheMisses.Inc()
	return nil, false
}

func (c *pathCache) fill(expr string, p *xpathlite.Path) {
	s := c.stripe(expr)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[expr]; ok {
		e.path, e.ref = p, true
		return
	}
	if len(s.entries) >= c.stripeCap {
		s.evictOne()
	}
	s.entries[expr] = &pathEntry{path: p, ref: true}
	s.ring = append(s.ring, expr)
}

func (s *pathStripe) evictOne() {
	for {
		expr := s.ring[s.hand]
		e := s.entries[expr]
		if e.ref {
			e.ref = false
			s.hand = (s.hand + 1) % len(s.ring)
			continue
		}
		delete(s.entries, expr)
		last := len(s.ring) - 1
		s.ring[s.hand] = s.ring[last]
		s.ring = s.ring[:last]
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		pathCacheEvicts.Inc()
		return
	}
}

package xmldb

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"altstacks/internal/xmlutil"
)

func id(i int) string { return fmt.Sprintf("id-%04d", i) }

func counterValue(t *testing.T, doc *xmlutil.Element) int64 {
	t.Helper()
	v, err := strconv.ParseInt(doc.ChildText("urn:c", "Value"), 10, 64)
	if err != nil {
		t.Fatalf("counter value: %v", err)
	}
	return v
}

// countingBackend counts raw Get calls, to prove the conditional
// writes removed the existence pre-read.
type countingBackend struct {
	Backend
	gets atomic.Int64
}

func (c *countingBackend) Get(col, id string) ([]byte, bool, error) {
	c.gets.Add(1)
	return c.Backend.Get(col, id)
}

// TestQueryReusesParsedDocuments pins the cache's core promise:
// repeated queries over an unchanged collection parse each document
// exactly once.
func TestQueryReusesParsedDocuments(t *testing.T) {
	db := NewMemory(CostModel{})
	for i := 0; i < 8; i++ {
		if err := db.Create("c", id(i), counterDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 5; round++ {
		hits, err := db.Query("c", "/Counter")
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != 8 {
			t.Fatalf("round %d: hits = %d", round, len(hits))
		}
	}
	if s := db.Stats(); s.Parses != 8 {
		t.Fatalf("parses = %d, want 8 (one per document across 5 query rounds)", s.Parses)
	}
}

// TestGetReusesParsedDocument: repeated Gets of an unchanged document
// parse once but still count as reads.
func TestGetReusesParsedDocument(t *testing.T) {
	db := NewMemory(CostModel{})
	if err := db.Create("c", "1", counterDoc(7)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := db.Get("c", "1"); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Stats()
	if s.Parses != 1 {
		t.Fatalf("parses = %d, want 1", s.Parses)
	}
	if s.Reads != 4 {
		t.Fatalf("reads = %d, want 4 (cache hits still count as reads)", s.Reads)
	}
	cs := db.CollectionStats("c")
	if cs.Parses != 1 || cs.Reads != 4 {
		t.Fatalf("collection stats = %+v", cs)
	}
}

// TestWriteInvalidatesDocCache: every mutation path (Update, Put,
// Delete+Create) bumps the collection generation and forces a re-parse.
func TestWriteInvalidatesDocCache(t *testing.T) {
	db := NewMemory(CostModel{})
	if err := db.Create("c", "1", counterDoc(1)); err != nil {
		t.Fatal(err)
	}
	read := func(want int64) {
		t.Helper()
		doc, err := db.Get("c", "1")
		if err != nil {
			t.Fatal(err)
		}
		if got := counterValue(t, doc); got != want {
			t.Fatalf("value = %d, want %d", got, want)
		}
	}
	read(1)
	if err := db.Update("c", "1", counterDoc(2)); err != nil {
		t.Fatal(err)
	}
	read(2)
	if err := db.Put("c", "1", counterDoc(3)); err != nil {
		t.Fatal(err)
	}
	read(3)
	if err := db.Delete("c", "1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Create("c", "1", counterDoc(4)); err != nil {
		t.Fatal(err)
	}
	read(4)
	if s := db.Stats(); s.Parses != 4 {
		t.Fatalf("parses = %d, want 4 (each write invalidates)", s.Parses)
	}
}

// TestCachedGetReturnsPrivateClone: mutating a returned tree must not
// leak into later reads — the cache hands out clones, never the
// master copy.
func TestCachedGetReturnsPrivateClone(t *testing.T) {
	db := NewMemory(CostModel{})
	if err := db.Create("c", "1", counterDoc(5)); err != nil {
		t.Fatal(err)
	}
	first, err := db.Get("c", "1")
	if err != nil {
		t.Fatal(err)
	}
	first.ChildLocal("Value").SetText("999")
	second, err := db.Get("c", "1")
	if err != nil {
		t.Fatal(err)
	}
	if counterValue(t, second) != 5 {
		t.Fatal("caller mutation leaked into the document cache")
	}
	// Same for Query matches.
	hits, err := db.Query("c", "/Counter")
	if err != nil {
		t.Fatal(err)
	}
	hits[0].Matches[0].ChildLocal("Value").SetText("888")
	third, err := db.Get("c", "1")
	if err != nil {
		t.Fatal(err)
	}
	if counterValue(t, third) != 5 {
		t.Fatal("query-match mutation leaked into the document cache")
	}
}

// TestCachedQueryStillChargesCostModel: the cache removes parse work,
// never modeled Xindice latency — the figure shapes depend on it.
func TestCachedQueryStillChargesCostModel(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const queryCost = 25 * time.Millisecond
	db := NewMemory(CostModel{Query: queryCost})
	if err := db.Create("c", "1", counterDoc(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("c", "/Counter"); err != nil { // warm
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := db.Query("c", "/Counter"); err != nil { // cache-hot
		t.Fatal(err)
	}
	if hot := time.Since(start); hot < queryCost {
		t.Fatalf("cache-hot query took %v, want >= %v (cost model must still apply)", hot, queryCost)
	}
	if s := db.Stats(); s.Queries != 2 {
		t.Fatalf("queries = %d, want 2 (cache hits still count)", s.Queries)
	}
}

// TestMalformedQueryDoesNotPolluteStats: compilation happens before
// the operation is counted or the modeled latency charged.
func TestMalformedQueryDoesNotPolluteStats(t *testing.T) {
	db := NewMemory(CostModel{Query: 250 * time.Millisecond})
	start := time.Now()
	if _, err := db.Query("c", "///"); err == nil {
		t.Fatal("malformed expression accepted")
	}
	if took := time.Since(start); took > 100*time.Millisecond {
		t.Fatalf("malformed query paid modeled latency (%v)", took)
	}
	if s := db.Stats(); s.Queries != 0 {
		t.Fatalf("queries = %d, want 0 (compile failures are not operations)", s.Queries)
	}
	if s := db.CollectionStats("c"); s.Queries != 0 {
		t.Fatalf("collection queries = %d, want 0", s.Queries)
	}
}

// TestPerDocumentInvalidation is the cache-scaling acceptance pin:
// updating document A must not force a re-parse of cached document B
// in the same collection. Under whole-collection generations (the old
// design), the Update of "a" evicted every parsed doc — the Notify
// path's biggest avoidable cache-miss source.
func TestPerDocumentInvalidation(t *testing.T) {
	db := NewMemory(CostModel{})
	const docs = 8
	for i := 0; i < docs; i++ {
		if err := db.Create("c", id(i), counterDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the cache: every document parsed exactly once.
	if _, err := db.Query("c", "/Counter"); err != nil {
		t.Fatal(err)
	}
	if p := db.CollectionStats("c").Parses; p != docs {
		t.Fatalf("warm parses = %d, want %d", p, docs)
	}

	// Update doc 0; re-read doc 3 and re-scan. Only doc 0 re-parses.
	if err := db.Update("c", id(0), counterDoc(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("c", id(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("c", "/Counter"); err != nil {
		t.Fatal(err)
	}
	if p := db.CollectionStats("c").Parses; p != docs+1 {
		t.Fatalf("parses after single-doc update = %d, want %d (only the updated doc re-parses)", p, docs+1)
	}

	// The updated content is really served (no stale cache).
	doc, err := db.Get("c", id(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, doc); got != 100 {
		t.Fatalf("value = %d, want 100", got)
	}

	// Delete is equally surgical.
	if err := db.Delete("c", id(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("c", "/Counter"); err != nil {
		t.Fatal(err)
	}
	if p := db.CollectionStats("c").Parses; p != docs+1 {
		t.Fatalf("parses after delete = %d, want %d (deleting one doc re-parses nothing)", p, docs+1)
	}
}

// TestClockEvictionKeepsHotDocuments: under cap pressure, a document
// referenced since the hand's last sweep survives (second chance) and
// a cold one is evicted — deterministically, unlike the old arbitrary
// map-iteration eviction.
func TestClockEvictionKeepsHotDocuments(t *testing.T) {
	// One-entry stripes (cap 16 over 16 stripes) would make every fill
	// an eviction; use a cap that gives each stripe a few slots and
	// drive enough documents through one collection to overflow them.
	db := newWithCacheCaps(NewMemoryBackend(), CostModel{}, 32, 16)
	const hot = "hot-doc"
	if err := db.Create("c", hot, counterDoc(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("c", hot); err != nil { // cache the hot doc
		t.Fatal(err)
	}
	// Interleave cold fills with hot touches: the touches keep the ref
	// bit set, so each stripe's hand evicts cold entries around it.
	for i := 0; i < 64; i++ {
		if err := db.Create("c", id(i), counterDoc(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Get("c", id(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Get("c", hot); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Stats().Parses
	if _, err := db.Get("c", hot); err != nil {
		t.Fatal(err)
	}
	if after := db.Stats().Parses; after != before {
		t.Fatalf("hot document was evicted under cap pressure (parses %d→%d)", before, after)
	}
}

// probeBackend counts raw Gets while inheriting the fast Has of the
// memory backend.
type probeBackend struct {
	*MemoryBackend
	gets atomic.Int64
}

func (p *probeBackend) Get(col, id string) ([]byte, bool, error) {
	p.gets.Add(1)
	return p.MemoryBackend.Get(col, id)
}

// TestExistsUsesHasProbe: Exists answers through Backend.Has — no
// document bytes are copied just to report presence. A backend without
// Has still works via the Get fallback.
func TestExistsUsesHasProbe(t *testing.T) {
	pb := &probeBackend{MemoryBackend: NewMemoryBackend()}
	db := New(pb, CostModel{})
	if err := db.Create("c", "1", counterDoc(0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if ok, err := db.Exists("c", "1"); err != nil || !ok {
			t.Fatalf("exists = %v, %v", ok, err)
		}
	}
	if ok, err := db.Exists("c", "absent"); err != nil || ok {
		t.Fatalf("exists(absent) = %v, %v", ok, err)
	}
	if g := pb.gets.Load(); g != 0 {
		t.Fatalf("Exists copied document bytes %d times; want 0 (Backend.Has)", g)
	}
	if s := db.CollectionStats("c"); s.Reads != 4 {
		t.Fatalf("reads = %d, want 4 (every Exists counts as a read)", s.Reads)
	}

	// Fallback: a Backend that lacks Has (countingBackend embeds the
	// interface, hiding the concrete Has) degrades to Get.
	cb := &countingBackend{Backend: NewMemoryBackend()}
	db2 := New(cb, CostModel{})
	if err := db2.Create("c", "1", counterDoc(0)); err != nil {
		t.Fatal(err)
	}
	if ok, err := db2.Exists("c", "1"); err != nil || !ok {
		t.Fatalf("fallback exists = %v, %v", ok, err)
	}
	if g := cb.gets.Load(); g != 1 {
		t.Fatalf("fallback gets = %d, want 1", g)
	}
}

// TestCondPutSkipsPreRead: Create/Update/Delete no longer issue the
// existence probe as a separate backend Get.
func TestCondPutSkipsPreRead(t *testing.T) {
	be := &countingBackend{Backend: NewMemoryBackend()}
	db := New(be, CostModel{})
	if err := db.Create("c", "1", counterDoc(0)); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("c", "1", counterDoc(1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("c", "1"); err != nil {
		t.Fatal(err)
	}
	if be.gets.Load() != 0 {
		t.Fatalf("backend gets = %d, want 0 (existence probes must use CondPut/CondDelete)", be.gets.Load())
	}
}

package xmldb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentShardedHammer drives Get/Update/Query/Delete (plus
// Create/Exists/IDs) from many goroutines against a sharded backend —
// run under -race in CI, it is the memory-safety gate for the striped
// caches and the shard router. A small doc-cache cap keeps the CLOCK
// hand sweeping the whole time.
func TestConcurrentShardedHammer(t *testing.T) {
	const (
		workers = 8
		iters   = 60
		cols    = 3
	)
	db := newWithCacheCaps(NewShardedMemory(4), CostModel{}, 64, 16)

	// Shared documents every goroutine reads, queries, and updates.
	for c := 0; c < cols; c++ {
		for i := 0; i < 8; i++ {
			if err := db.Create(fmt.Sprintf("shared-%d", c), id(i), counterDoc(i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				shared := fmt.Sprintf("shared-%d", i%cols)
				own := fmt.Sprintf("own-%d", w)
				ownID := id(i)

				if err := db.Create(own, ownID, counterDoc(i)); err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if _, err := db.Get(shared, id(i%8)); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("get shared: %v", err)
					return
				}
				if err := db.Update(shared, id(i%8), counterDoc(w*1000+i)); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("update shared: %v", err)
					return
				}
				if _, err := db.Query(shared, "/Counter[Value>=0]"); err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if _, err := db.Exists(shared, id(i%8)); err != nil {
					t.Errorf("exists: %v", err)
					return
				}
				if _, err := db.IDs(own); err != nil {
					t.Errorf("ids: %v", err)
					return
				}
				if i%2 == 1 {
					if err := db.Delete(own, ownID); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Every goroutine deleted its odd-iteration docs, so each own-w
	// collection holds exactly the even-iteration ones.
	for w := 0; w < workers; w++ {
		ids, err := db.IDs(fmt.Sprintf("own-%d", w))
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != iters/2 {
			t.Fatalf("own-%d has %d docs, want %d", w, len(ids), iters/2)
		}
	}
	// Shared documents survived the update storm and still parse.
	for c := 0; c < cols; c++ {
		for i := 0; i < 8; i++ {
			if _, err := db.Get(fmt.Sprintf("shared-%d", c), id(i)); err != nil {
				t.Fatalf("post-hammer get: %v", err)
			}
		}
	}
}

// TestConcurrentQueryScanMatchesSerial: the parallel scan returns the
// same id-ordered hits a serial scan produces, under concurrent
// re-querying. (On a single-core runner the scan degenerates to
// serial; the -race CI pass still exercises the worker pool wherever
// GOMAXPROCS > 1.)
func TestConcurrentQueryScanMatchesSerial(t *testing.T) {
	db := NewMemory(CostModel{})
	const docs = 64
	for i := 0; i < docs; i++ {
		if err := db.Create("c", id(i), counterDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				hits, err := db.Query("c", "/Counter[Value>=32]")
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if len(hits) != docs-32 {
					t.Errorf("hits = %d, want %d", len(hits), docs-32)
					return
				}
				for i := 1; i < len(hits); i++ {
					if hits[i-1].ID >= hits[i].ID {
						t.Errorf("hits out of id order at %d: %q >= %q", i, hits[i-1].ID, hits[i].ID)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

package xmldb

import (
	"context"

	"altstacks/internal/obs"
	"altstacks/internal/xmlutil"
)

// Context-carrying variants of the database operations. They are what
// request-path callers (service handlers, the WSRF Home, subscription
// stores) use: each wraps the plain operation in an "xmldb.<op>" trace
// span joined to the request's trace and observes the storage stage
// histogram. The plain methods stay for context-free callers (wiring,
// background sweeps) and never open spans — obs.ChildSpan on a bare
// context would be nil anyway, so the two entry points converge when
// tracing is off.

// dbOp wraps one operation in its span and the storage histogram.
func dbOp(ctx context.Context, name, collection string, fn func() error) error {
	t0 := obs.Start()
	span := obs.ChildSpan(ctx, "xmldb."+name)
	span.SetAttr("collection", collection)
	err := fn()
	obs.StageStorage.ObserveSinceSpan(t0, span)
	span.Fail(err)
	span.End()
	return err
}

// CreateContext is Create traced under ctx's request span.
func (db *DB) CreateContext(ctx context.Context, collection, id string, doc *xmlutil.Element) error {
	return dbOp(ctx, "create", collection, func() error { return db.Create(collection, id, doc) })
}

// GetContext is Get traced under ctx's request span.
func (db *DB) GetContext(ctx context.Context, collection, id string) (*xmlutil.Element, error) {
	var doc *xmlutil.Element
	err := dbOp(ctx, "get", collection, func() error {
		var e error
		doc, e = db.Get(collection, id)
		return e
	})
	return doc, err
}

// UpdateContext is Update traced under ctx's request span.
func (db *DB) UpdateContext(ctx context.Context, collection, id string, doc *xmlutil.Element) error {
	return dbOp(ctx, "update", collection, func() error { return db.Update(collection, id, doc) })
}

// PutContext is Put traced under ctx's request span.
func (db *DB) PutContext(ctx context.Context, collection, id string, doc *xmlutil.Element) error {
	return dbOp(ctx, "put", collection, func() error { return db.Put(collection, id, doc) })
}

// DeleteContext is Delete traced under ctx's request span.
func (db *DB) DeleteContext(ctx context.Context, collection, id string) error {
	return dbOp(ctx, "delete", collection, func() error { return db.Delete(collection, id) })
}

// ExistsContext is Exists traced under ctx's request span.
func (db *DB) ExistsContext(ctx context.Context, collection, id string) (bool, error) {
	var ok bool
	err := dbOp(ctx, "exists", collection, func() error {
		var e error
		ok, e = db.Exists(collection, id)
		return e
	})
	return ok, err
}

// IDsContext is IDs traced under ctx's request span.
func (db *DB) IDsContext(ctx context.Context, collection string) ([]string, error) {
	var ids []string
	err := dbOp(ctx, "ids", collection, func() error {
		var e error
		ids, e = db.IDs(collection)
		return e
	})
	return ids, err
}

// QueryContext is Query traced under ctx's request span.
func (db *DB) QueryContext(ctx context.Context, collection, expr string) ([]QueryHit, error) {
	var hits []QueryHit
	err := dbOp(ctx, "query", collection, func() error {
		var e error
		hits, e = db.Query(collection, expr)
		return e
	})
	return hits, err
}

package xmldb

import (
	"errors"
	"strings"
	"testing"
)

// faultyBackend wraps a backend and fails selected operations —
// failure injection for the storage seam.
type faultyBackend struct {
	Backend
	failPut, failGet, failDelete, failIDs bool
}

var errDisk = errors.New("simulated disk failure")

func (f *faultyBackend) Put(c, id string, doc []byte) error {
	if f.failPut {
		return errDisk
	}
	return f.Backend.Put(c, id, doc)
}

func (f *faultyBackend) Get(c, id string) ([]byte, bool, error) {
	if f.failGet {
		return nil, false, errDisk
	}
	return f.Backend.Get(c, id)
}

func (f *faultyBackend) Delete(c, id string) error {
	if f.failDelete {
		return errDisk
	}
	return f.Backend.Delete(c, id)
}

func (f *faultyBackend) CondPut(c, id string, doc []byte, wantExists bool) (bool, error) {
	// The existence probe now lives inside the conditional write, so a
	// failing read surfaces here too.
	if f.failGet || f.failPut {
		return false, errDisk
	}
	return f.Backend.CondPut(c, id, doc, wantExists)
}

func (f *faultyBackend) CondDelete(c, id string) (bool, error) {
	if f.failDelete {
		return false, errDisk
	}
	return f.Backend.CondDelete(c, id)
}

func (f *faultyBackend) IDs(c string) ([]string, error) {
	if f.failIDs {
		return nil, errDisk
	}
	return f.Backend.IDs(c)
}

func TestBackendFailuresPropagate(t *testing.T) {
	fb := &faultyBackend{Backend: NewMemoryBackend()}
	db := New(fb, CostModel{})
	if err := db.Create("c", "1", counterDoc(0)); err != nil {
		t.Fatal(err)
	}

	fb.failGet = true
	if _, err := db.Get("c", "1"); !errors.Is(err, errDisk) {
		t.Fatalf("Get: %v", err)
	}
	if err := db.Update("c", "1", counterDoc(1)); !errors.Is(err, errDisk) {
		t.Fatalf("Update (existence probe): %v", err)
	}
	if err := db.Create("c", "2", counterDoc(0)); !errors.Is(err, errDisk) {
		t.Fatalf("Create (existence probe): %v", err)
	}
	if _, err := db.Exists("c", "1"); !errors.Is(err, errDisk) {
		t.Fatalf("Exists: %v", err)
	}
	fb.failGet = false

	fb.failPut = true
	if err := db.Put("c", "1", counterDoc(2)); !errors.Is(err, errDisk) {
		t.Fatalf("Put: %v", err)
	}
	fb.failPut = false

	fb.failDelete = true
	if err := db.Delete("c", "1"); !errors.Is(err, errDisk) {
		t.Fatalf("Delete: %v", err)
	}
	fb.failDelete = false

	fb.failIDs = true
	if _, err := db.IDs("c"); !errors.Is(err, errDisk) {
		t.Fatalf("IDs: %v", err)
	}
	if _, err := db.Query("c", "/Counter"); !errors.Is(err, errDisk) {
		t.Fatalf("Query: %v", err)
	}
	fb.failIDs = false

	// The store must be fully usable again after the fault clears.
	if _, err := db.Get("c", "1"); err != nil {
		t.Fatalf("recovery: %v", err)
	}
}

func TestQueryReportsCorruptDocument(t *testing.T) {
	be := NewMemoryBackend()
	if err := be.Put("c", "bad", []byte("<unclosed")); err != nil {
		t.Fatal(err)
	}
	db := New(be, CostModel{})
	_, err := db.Query("c", "/anything")
	if err == nil || !strings.Contains(err.Error(), "corrupt document") {
		t.Fatalf("err = %v", err)
	}
}

func TestGetCorruptDocument(t *testing.T) {
	be := NewMemoryBackend()
	if err := be.Put("c", "bad", []byte("not xml at all")); err != nil {
		t.Fatal(err)
	}
	db := New(be, CostModel{})
	if _, err := db.Get("c", "bad"); err == nil {
		t.Fatal("corrupt document parsed")
	}
}

func TestPerCollectionStats(t *testing.T) {
	db := NewMemory(CostModel{})
	_ = db.Create("a", "1", counterDoc(0))
	_, _ = db.Get("a", "1")
	_ = db.Create("b", "1", counterDoc(0))
	sa := db.CollectionStats("a")
	sb := db.CollectionStats("b")
	if sa.Creates != 1 || sa.Reads != 1 {
		t.Fatalf("a stats = %+v", sa)
	}
	if sb.Creates != 1 || sb.Reads != 0 {
		t.Fatalf("b stats = %+v", sb)
	}
	if s := db.CollectionStats("never"); s != (Stats{}) {
		t.Fatalf("untouched collection stats = %+v", s)
	}
}

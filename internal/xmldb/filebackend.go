package xmldb

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileBackend persists documents as files under root/collection/id.xml.
// Document ids are percent-encoded so ids containing path separators
// (for example Grid-in-a-Box file EPRs of the form "userDN/filename",
// paper §4.2.2) remain single path components.
type FileBackend struct {
	root string
	mu   sync.RWMutex
}

// NewFileBackend creates (if needed) and opens a store rooted at dir.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("xmldb: open file backend: %w", err)
	}
	return &FileBackend{root: dir}, nil
}

func (f *FileBackend) path(collection, id string) string {
	return filepath.Join(f.root, url.PathEscape(collection), url.PathEscape(id)+".xml")
}

// Put implements Backend.
func (f *FileBackend) Put(collection, id string, doc []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.path(collection, id)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// Get implements Backend.
func (f *FileBackend) Get(collection, id string) ([]byte, bool, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	data, err := os.ReadFile(f.path(collection, id))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// Has implements Haser: one stat call, no document bytes read.
func (f *FileBackend) Has(collection, id string) (bool, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, err := os.Stat(f.path(collection, id))
	if os.IsNotExist(err) {
		return false, nil
	}
	return err == nil, err
}

// CondPut implements Backend: the existence probe and the write happen
// under one writer lock, so it is atomic with respect to the other
// Backend methods on this store.
func (f *FileBackend) CondPut(collection, id string, doc []byte, wantExists bool) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.path(collection, id)
	_, err := os.Stat(p)
	exists := err == nil
	if err != nil && !os.IsNotExist(err) {
		return false, err
	}
	if exists != wantExists {
		return false, nil
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return false, err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return false, err
	}
	return true, os.Rename(tmp, p)
}

// CondDelete implements Backend.
func (f *FileBackend) CondDelete(collection, id string) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	err := os.Remove(f.path(collection, id))
	if os.IsNotExist(err) {
		return false, nil
	}
	return err == nil, err
}

// Delete implements Backend.
func (f *FileBackend) Delete(collection, id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	err := os.Remove(f.path(collection, id))
	if os.IsNotExist(err) {
		return fmt.Errorf("xmldb: delete missing %s/%s", collection, id)
	}
	return err
}

// IDs implements Backend.
func (f *FileBackend) IDs(collection string) ([]string, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	entries, err := os.ReadDir(filepath.Join(f.root, url.PathEscape(collection)))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".xml") {
			continue
		}
		id, err := url.PathUnescape(strings.TrimSuffix(name, ".xml"))
		if err != nil {
			continue // foreign file in the store directory
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

package xmldb

import (
	"fmt"
	"path/filepath"
	"sort"

	"altstacks/internal/obs"
)

// Shard metric families: operations routed through sharded backends,
// process-wide (tests and the admin endpoint read them).
var (
	shardOps = obs.NewCounter("ogsa_xmldb_shard_ops_total", "",
		"backend operations routed through sharded backends")
	shardIDScans = obs.NewCounter("ogsa_xmldb_shard_idscans_total", "",
		"collection ID listings merged across shards")
)

// ShardedBackend partitions the key space over N inner backends by
// FNV-1a hash of (collection, id). Each inner backend keeps its own
// lock, so writers to different shards never contend — the
// single-process half of the roadmap's sharded-federation item, and
// the seam a multi-process deployment slots into (replace an inner
// Backend with a remote one; routing is already in place).
//
// Every (collection, id) routes to exactly one shard, so the
// conditional-write atomicity each inner backend guarantees carries
// over unchanged. Collection listings merge the per-shard sorted sets.
type ShardedBackend struct {
	shards []Backend
}

// NewShardedBackend builds a sharded backend over the given inner
// backends. At least one shard is required.
func NewShardedBackend(shards ...Backend) *ShardedBackend {
	if len(shards) == 0 {
		panic("xmldb: NewShardedBackend requires at least one shard")
	}
	return &ShardedBackend{shards: append([]Backend(nil), shards...)}
}

// NewShardedMemory returns a sharded backend over n fresh in-memory
// stores.
func NewShardedMemory(n int) *ShardedBackend {
	shards := make([]Backend, n)
	for i := range shards {
		shards[i] = NewMemoryBackend()
	}
	return NewShardedBackend(shards...)
}

// NewShardedFileBackend returns a sharded backend over n file stores
// rooted at dir/shard-<i>.
func NewShardedFileBackend(dir string, n int) (*ShardedBackend, error) {
	shards := make([]Backend, n)
	for i := range shards {
		fb, err := NewFileBackend(filepath.Join(dir, fmt.Sprintf("shard-%d", i)))
		if err != nil {
			return nil, err
		}
		shards[i] = fb
	}
	return NewShardedBackend(shards...), nil
}

// Shards reports the shard count.
func (s *ShardedBackend) Shards() int { return len(s.shards) }

// ShardIndex is the routing function: the shard holding (collection,
// id). Exported so tests (and future placement-aware callers) can
// assert where a key lives.
func (s *ShardedBackend) ShardIndex(collection, id string) int {
	return int(keyHash(collection, id) % uint64(len(s.shards)))
}

func (s *ShardedBackend) route(collection, id string) Backend {
	shardOps.Inc()
	return s.shards[s.ShardIndex(collection, id)]
}

// Put implements Backend.
func (s *ShardedBackend) Put(collection, id string, doc []byte) error {
	return s.route(collection, id).Put(collection, id, doc)
}

// Get implements Backend.
func (s *ShardedBackend) Get(collection, id string) ([]byte, bool, error) {
	return s.route(collection, id).Get(collection, id)
}

// Delete implements Backend.
func (s *ShardedBackend) Delete(collection, id string) error {
	return s.route(collection, id).Delete(collection, id)
}

// CondPut implements Backend: the precondition check is atomic within
// the one shard that owns the key.
func (s *ShardedBackend) CondPut(collection, id string, doc []byte, wantExists bool) (bool, error) {
	return s.route(collection, id).CondPut(collection, id, doc, wantExists)
}

// CondDelete implements Backend.
func (s *ShardedBackend) CondDelete(collection, id string) (bool, error) {
	return s.route(collection, id).CondDelete(collection, id)
}

// Has implements the presence probe, routing to the owning shard and
// using its fast path when it offers one.
func (s *ShardedBackend) Has(collection, id string) (bool, error) {
	return backendHas(s.route(collection, id), collection, id)
}

// IDs implements Backend: the union of every shard's sorted listing,
// re-sorted. Shards partition the key space, so the union has no
// duplicates.
func (s *ShardedBackend) IDs(collection string) ([]string, error) {
	shardIDScans.Inc()
	var ids []string
	for _, b := range s.shards {
		part, err := b.IDs(collection)
		if err != nil {
			return nil, err
		}
		ids = append(ids, part...)
	}
	sort.Strings(ids)
	return ids, nil
}

package xmldb

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// TestShardRoutingProperty pins the routing invariants: the index is
// deterministic, in range, and every stored key is physically present
// in exactly the shard ShardIndex names — no duplicate or orphan
// copies anywhere else.
func TestShardRoutingProperty(t *testing.T) {
	const n = 5
	inners := make([]*MemoryBackend, n)
	shards := make([]Backend, n)
	for i := range inners {
		inners[i] = NewMemoryBackend()
		shards[i] = inners[i]
	}
	sb := NewShardedBackend(shards...)

	f := func(collection, id string) bool {
		want := sb.ShardIndex(collection, id)
		if want < 0 || want >= n {
			return false
		}
		if got := sb.ShardIndex(collection, id); got != want {
			return false // not deterministic
		}
		if err := sb.Put(collection, id, []byte("<d/>")); err != nil {
			return false
		}
		for i, inner := range inners {
			_, ok, err := inner.Get(collection, id)
			if err != nil {
				return false
			}
			if ok != (i == want) {
				return false // stored in the wrong shard, or in several
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestShardSeparatorKeysRouteIndependently: (collection, id) pairs
// whose concatenations collide must still hash apart.
func TestShardSeparatorKeysRouteIndependently(t *testing.T) {
	if keyHash("ab", "c") == keyHash("a", "bc") {
		t.Fatal("keyHash does not separate collection from id")
	}
}

// TestShardedIDsMergeSortedComplete: listings merge every shard's
// partition, sorted, with no duplicates or losses.
func TestShardedIDsMergeSortedComplete(t *testing.T) {
	sb := NewShardedMemory(4)
	want := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("doc-%03d", i)
		if err := sb.Put("c", id, []byte("<d/>")); err != nil {
			t.Fatal(err)
		}
		want[id] = true
	}
	ids, err := sb.IDs("c")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(want) {
		t.Fatalf("ids = %d, want %d", len(ids), len(want))
	}
	for i, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected id %q", id)
		}
		if i > 0 && ids[i-1] >= id {
			t.Fatalf("ids not strictly sorted at %d: %q >= %q", i, ids[i-1], id)
		}
	}
	// Documents land on more than one shard for this key population —
	// otherwise the merge above proved nothing.
	populated := 0
	for i := 0; i < sb.Shards(); i++ {
		part, err := sb.shards[i].IDs("c")
		if err != nil {
			t.Fatal(err)
		}
		if len(part) > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("only %d shard(s) populated; routing is degenerate", populated)
	}
}

// TestShardedCondOpsAtomicPerKey: conditional writes keep their
// semantics through routing.
func TestShardedCondOpsAtomicPerKey(t *testing.T) {
	sb := NewShardedMemory(3)
	stored, err := sb.CondPut("c", "k", []byte("<a/>"), true)
	if err != nil || stored {
		t.Fatalf("CondPut(wantExists) on absent = %v, %v", stored, err)
	}
	if stored, err = sb.CondPut("c", "k", []byte("<a/>"), false); err != nil || !stored {
		t.Fatalf("CondPut create = %v, %v", stored, err)
	}
	if stored, err = sb.CondPut("c", "k", []byte("<b/>"), false); err != nil || stored {
		t.Fatalf("CondPut duplicate create = %v, %v", stored, err)
	}
	if ok, err := sb.Has("c", "k"); err != nil || !ok {
		t.Fatalf("Has = %v, %v", ok, err)
	}
	removed, err := sb.CondDelete("c", "k")
	if err != nil || !removed {
		t.Fatalf("CondDelete = %v, %v", removed, err)
	}
	if removed, err = sb.CondDelete("c", "k"); err != nil || removed {
		t.Fatalf("CondDelete absent = %v, %v", removed, err)
	}
}

// TestShardedFileBackend: the on-disk variant shards into per-shard
// subdirectories and round-trips through a DB.
func TestShardedFileBackend(t *testing.T) {
	sb, err := NewShardedFileBackend(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	db := New(sb, CostModel{})
	for i := 0; i < 20; i++ {
		if err := db.Create("c", id(i), counterDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := db.IDs("c")
	if err != nil || len(ids) != 20 {
		t.Fatalf("ids = %d, err = %v", len(ids), err)
	}
	if _, err := db.Get("c", id(7)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("c", id(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("c", id(7)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
}

// TestShardedBackendErrorPropagation: an inner shard's failure
// surfaces through the router, including from the merged listing.
func TestShardedBackendErrorPropagation(t *testing.T) {
	bad := &faultyBackend{Backend: NewMemoryBackend(), failIDs: true}
	sb := NewShardedBackend(NewMemoryBackend(), bad)
	if _, err := sb.IDs("c"); !errors.Is(err, errDisk) {
		t.Fatalf("IDs = %v, want shard failure", err)
	}
}

// Package xmldb is an XML document database modeled on Apache Xindice,
// the backend both implementations in the paper share (§3.3 — "both
// approaches rely on efficient storage of XML-based resources, so it
// is not surprising that the same XML database (Xindice) was used").
//
// Documents live in named collections, are keyed by string ids, and
// can be queried with XPath-lite expressions across a collection —
// the "rich queries over the state of multiple resources" WSRF.NET
// exposes through QueryResourceProperties (paper §3.1).
//
// A CostModel injects deterministic per-operation latency so the
// benchmark harness reproduces the paper's dominant performance
// effect: "Both counter implementations' performance is dominated by
// Xindice. Creating resources (and adding them to the database) in
// particular is always slower than reading or updating them" (§4.1.3).
// The in-process store itself is microseconds; the model restores the
// 2005-era database floor. Unit tests use the zero CostModel.
package xmldb

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"altstacks/internal/fanout"
	"altstacks/internal/obs"
	"altstacks/internal/xmlutil"
	"altstacks/internal/xpathlite"
)

// Registry mirrors of the per-instance Stats counters: process-wide
// aggregates across every DB instance, exposed on /metrics. The
// per-instance atomics stay authoritative for Stats()/tests.
var (
	opCreates = obs.NewCounter("ogsa_xmldb_ops_total", `op="create"`, "xmldb operations by kind")
	opReads   = obs.NewCounter("ogsa_xmldb_ops_total", `op="read"`, "xmldb operations by kind")
	opUpdates = obs.NewCounter("ogsa_xmldb_ops_total", `op="update"`, "xmldb operations by kind")
	opDeletes = obs.NewCounter("ogsa_xmldb_ops_total", `op="delete"`, "xmldb operations by kind")
	opQueries = obs.NewCounter("ogsa_xmldb_ops_total", `op="query"`, "xmldb operations by kind")

	parsesTotal = obs.NewCounter("ogsa_xmldb_parses_total", "",
		"documents decoded from backend bytes (cache misses)")
)

// Sentinel errors, testable with errors.Is.
var (
	ErrNotFound = errors.New("xmldb: document not found")
	ErrExists   = errors.New("xmldb: document already exists")
)

// CostModel gives each database operation a fixed latency floor.
type CostModel struct {
	Create time.Duration
	Read   time.Duration
	Update time.Duration
	Delete time.Duration
	Query  time.Duration
}

// XindiceProfile approximates the relative operation costs the paper
// measured against Xindice on the 2005 testbed, scaled down ~4x so the
// benchmark suite completes quickly: creation (index + allocation) is
// by far the slowest, updates cost more than reads. Only the ratios
// matter for reproducing the figure shapes.
var XindiceProfile = CostModel{
	Create: 6 * time.Millisecond,
	Read:   1200 * time.Microsecond,
	Update: 2 * time.Millisecond,
	Delete: 1800 * time.Microsecond,
	Query:  2500 * time.Microsecond,
}

// Stats counts operations, for tests that assert access patterns (for
// example, that the WSRF resource cache eliminates the read before a
// write that the WS-Transfer path performs).
type Stats struct {
	Creates int64
	Reads   int64
	Updates int64
	Deletes int64
	Queries int64
	// Parses counts documents actually decoded from backend bytes.
	// Reads and Queries served from the parsed-document cache do not
	// increment it, so Parses < Reads measures cache effectiveness.
	Parses int64
}

// Backend is the raw byte store under the database. The paper's
// WSRF.NET supported multiple backends (SQL Server, Xindice,
// in-memory, custom); this interface is the equivalent seam.
type Backend interface {
	// Put stores doc under (collection, id), overwriting silently.
	Put(collection, id string, doc []byte) error
	// Get retrieves the document; ok is false when absent.
	Get(collection, id string) (doc []byte, ok bool, err error)
	// Delete removes the document; deleting an absent id is an error.
	Delete(collection, id string) error
	// IDs lists document ids in the collection, sorted.
	IDs(collection string) ([]string, error)
	// CondPut stores doc only when the id's current existence equals
	// wantExists, atomically with respect to other writers; stored is
	// false (with nil err) when the precondition fails. It lets
	// Create/Update make one backend round trip instead of a read
	// followed by a write.
	CondPut(collection, id string, doc []byte, wantExists bool) (stored bool, err error)
	// CondDelete removes the document if present; removed is false
	// (with nil err) when it was absent.
	CondDelete(collection, id string) (removed bool, err error)
}

// Haser is the optional presence-probe extension of Backend. Backends
// that can answer "is this id stored?" without materializing the
// document bytes implement it; DB.Exists uses it when available and
// falls back to a full Get otherwise, so third-party Backend
// implementations keep working unchanged.
type Haser interface {
	Has(collection, id string) (bool, error)
}

// backendHas probes presence through the fast path when the backend
// offers one, copying the document bytes only as a fallback.
func backendHas(b Backend, collection, id string) (bool, error) {
	if h, ok := b.(Haser); ok {
		return h.Has(collection, id)
	}
	_, ok, err := b.Get(collection, id)
	return ok, err
}

// Cache bounds. Parsed documents dominate memory, so their cap is the
// one that matters; compiled paths are tiny (the handful of query
// shapes the services issue). The exported names let harnesses
// (cmd/loadgen's soak invariants) assert resident growth stays under
// the caps without reaching into cache internals.
const (
	docCacheCap  = 4096
	pathCacheCap = 256

	// DocCacheCap is the resident parsed-document cache capacity.
	DocCacheCap = docCacheCap
	// PathCacheCap is the compiled-XPath cache capacity.
	PathCacheCap = pathCacheCap
)

// DB is the document database: a backend plus cost model and stats.
//
// DB memoizes two pieces of inbound-path work that the cost model does
// NOT account for (the model reproduces 2005-era Xindice latency; the
// parsing and compilation overhead on top of it is this stack's own):
//
//   - parsed documents, stamped with a per-document generation that a
//     write to that document bumps, so Get/Query reuse trees until the
//     backing bytes change — and a write to one document never evicts
//     its collection neighbours;
//   - compiled XPath-lite expressions, keyed by source text.
//
// Both caches are lock-striped (16 stripes each) and every counter is
// atomic, so concurrent clients on different documents or collections
// share no lock. Both caches are invisible to the CostModel: cached
// operations still pay the full modeled latency and count in Stats, so
// the benchmark figure shapes are unchanged — only the constant CPU
// overhead above the modeled floor shrinks.
type DB struct {
	backend Backend
	cost    CostModel

	creates, reads, updates, deletes, queries, parses atomic.Int64

	perCol sync.Map // collection → *colStats

	docs  *docCache
	paths *pathCache
}

// colStats is the per-collection mirror of Stats, atomic so counting
// never takes a lock.
type colStats struct {
	creates, reads, updates, deletes, queries, parses atomic.Int64
}

func (s *colStats) snapshot() Stats {
	return Stats{
		Creates: s.creates.Load(),
		Reads:   s.reads.Load(),
		Updates: s.updates.Load(),
		Deletes: s.deletes.Load(),
		Queries: s.queries.Load(),
		Parses:  s.parses.Load(),
	}
}

// New returns a database over the given backend.
func New(backend Backend, cost CostModel) *DB {
	return newWithCacheCaps(backend, cost, docCacheCap, pathCacheCap)
}

// newWithCacheCaps is the test seam for exercising eviction without
// building thousands of documents.
func newWithCacheCaps(backend Backend, cost CostModel, docCap, pathCap int) *DB {
	return &DB{
		backend: backend,
		cost:    cost,
		docs:    newDocCache(docCap),
		paths:   newPathCache(pathCap),
	}
}

// NewMemory returns a database over a fresh in-memory backend.
func NewMemory(cost CostModel) *DB { return New(NewMemoryBackend(), cost) }

// Stats returns a snapshot of the operation counters.
func (db *DB) Stats() Stats {
	return Stats{
		Creates: db.creates.Load(),
		Reads:   db.reads.Load(),
		Updates: db.updates.Load(),
		Deletes: db.deletes.Load(),
		Queries: db.queries.Load(),
		Parses:  db.parses.Load(),
	}
}

// CollectionStats returns the operation counters for one collection —
// how tests isolate, say, counter-document reads from subscription
// scans sharing the same database.
func (db *DB) CollectionStats(collection string) Stats {
	if v, ok := db.perCol.Load(collection); ok {
		return v.(*colStats).snapshot()
	}
	return Stats{}
}

// col returns the collection's atomic counter block, creating it on
// first touch. Steady state is one lock-free map load.
func (db *DB) col(collection string) *colStats {
	if v, ok := db.perCol.Load(collection); ok {
		return v.(*colStats)
	}
	v, _ := db.perCol.LoadOrStore(collection, &colStats{})
	return v.(*colStats)
}

func pause(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// invalidate drops the single document's cached parse. Writes call it
// after the backend accepted the mutation.
func (db *DB) invalidate(collection, id string) {
	db.docs.bump(docKey{collection, id})
}

// loadDoc returns the parsed document, from the cache when its
// generation is current, parsing (and counting the parse) otherwise.
// The returned tree is the shared master copy: callers must clone
// before handing it out.
func (db *DB) loadDoc(collection, id string) (*xmlutil.Element, bool, error) {
	key := docKey{collection, id}
	doc, gen, epoch, hit := db.docs.lookup(key)
	if hit {
		return doc, true, nil
	}

	raw, ok, err := db.backend.Get(collection, id)
	if err != nil || !ok {
		return nil, ok, err
	}
	doc, err = xmlutil.Parse(raw)
	if err != nil {
		return nil, true, fmt.Errorf("xmldb: corrupt document %s/%s: %w", collection, id, err)
	}
	db.parses.Add(1)
	parsesTotal.Inc()
	db.col(collection).parses.Add(1)

	db.docs.fill(key, gen, epoch, doc)
	return doc, true, nil
}

// compile returns the compiled form of expr, memoized by source text.
// xpathlite.Path is immutable after Compile, so one compiled path is
// safely shared across concurrent queries.
func (db *DB) compile(expr string) (*xpathlite.Path, error) {
	if p, ok := db.paths.lookup(expr); ok {
		return p, nil
	}
	p, err := xpathlite.Compile(expr)
	if err != nil {
		return nil, err
	}
	db.paths.fill(expr, p)
	return p, nil
}

// Create stores a new document; it fails with ErrExists when the id is
// already present.
func (db *DB) Create(collection, id string, doc *xmlutil.Element) error {
	pause(db.cost.Create)
	db.creates.Add(1)
	opCreates.Inc()
	db.col(collection).creates.Add(1)
	stored, err := db.backend.CondPut(collection, id, doc.Marshal(), false)
	if err != nil {
		return err
	}
	if !stored {
		return fmt.Errorf("%w: %s/%s", ErrExists, collection, id)
	}
	db.invalidate(collection, id)
	return nil
}

// Get loads and parses a document; ErrNotFound when absent.
func (db *DB) Get(collection, id string) (*xmlutil.Element, error) {
	pause(db.cost.Read)
	db.reads.Add(1)
	opReads.Inc()
	db.col(collection).reads.Add(1)
	doc, ok, err := db.loadDoc(collection, id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, collection, id)
	}
	return doc.Clone(), nil
}

// Update replaces an existing document; ErrNotFound when absent.
func (db *DB) Update(collection, id string, doc *xmlutil.Element) error {
	pause(db.cost.Update)
	db.updates.Add(1)
	opUpdates.Inc()
	db.col(collection).updates.Add(1)
	stored, err := db.backend.CondPut(collection, id, doc.Marshal(), true)
	if err != nil {
		return err
	}
	if !stored {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, collection, id)
	}
	db.invalidate(collection, id)
	return nil
}

// Put stores the document whether or not it exists — the upsert that
// out-of-band resource creation needs (paper §3.2: a WS-Transfer Get
// may be legitimate "although the corresponding entry in Xindice is
// not added by calling Create()").
func (db *DB) Put(collection, id string, doc *xmlutil.Element) error {
	pause(db.cost.Update)
	db.updates.Add(1)
	opUpdates.Inc()
	db.col(collection).updates.Add(1)
	if err := db.backend.Put(collection, id, doc.Marshal()); err != nil {
		return err
	}
	db.invalidate(collection, id)
	return nil
}

// Delete removes a document; ErrNotFound when absent.
func (db *DB) Delete(collection, id string) error {
	pause(db.cost.Delete)
	db.deletes.Add(1)
	opDeletes.Inc()
	db.col(collection).deletes.Add(1)
	removed, err := db.backend.CondDelete(collection, id)
	if err != nil {
		return err
	}
	if !removed {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, collection, id)
	}
	db.invalidate(collection, id)
	return nil
}

// Exists reports document presence without parsing (counts as a read).
// Backends implementing Haser answer without copying the document
// bytes; others fall back to a full Get.
func (db *DB) Exists(collection, id string) (bool, error) {
	pause(db.cost.Read)
	db.reads.Add(1)
	opReads.Inc()
	db.col(collection).reads.Add(1)
	return backendHas(db.backend, collection, id)
}

// IDs lists document ids in a collection, sorted.
func (db *DB) IDs(collection string) ([]string, error) {
	pause(db.cost.Read)
	db.reads.Add(1)
	opReads.Inc()
	db.col(collection).reads.Add(1)
	return db.backend.IDs(collection)
}

// QueryHit is one document matched by a collection query.
type QueryHit struct {
	ID      string
	Matches []*xmlutil.Element
}

// queryScanMinDocs is the collection size below which the scan stays
// on the caller's goroutine: spinning up workers for a handful of
// documents costs more than it saves.
const queryScanMinDocs = 8

// queryScanMaxWidth caps scan workers per query; the scan is
// parse-bound, so more workers than cores only adds scheduling churn.
const queryScanMaxWidth = 16

// Query evaluates an XPath-lite expression against every document in
// the collection, returning hits (documents with ≥1 selected element)
// in id order. Large collections are scanned by a bounded worker pool
// (loads and matches run concurrently); results are assembled in id
// order and Stats/CostModel semantics are identical to a serial scan —
// the modeled Xindice latency is charged once per query, never per
// worker.
func (db *DB) Query(collection, expr string) ([]QueryHit, error) {
	// Compile before charging the modeled latency or counting the
	// operation: a malformed expression never reaches the database in
	// the real stack, so it must not pollute Stats or pay Xindice cost.
	path, err := db.compile(expr)
	if err != nil {
		return nil, err
	}
	pause(db.cost.Query)
	db.queries.Add(1)
	opQueries.Inc()
	db.col(collection).queries.Add(1)
	ids, err := db.backend.IDs(collection)
	if err != nil {
		return nil, err
	}
	type slot struct {
		matches []*xmlutil.Element
		err     error
	}
	slots := make([]slot, len(ids))
	var failed atomic.Bool
	scan := func(i int) {
		if failed.Load() {
			return // some document already failed; result is discarded
		}
		doc, ok, err := db.loadDoc(collection, ids[i])
		if err != nil {
			slots[i].err = err
			failed.Store(true)
			return
		}
		if !ok {
			return // deleted concurrently
		}
		for _, n := range path.Select(doc) {
			if n.Kind == xpathlite.KindElement {
				// Clone: the match points into the cached master tree.
				slots[i].matches = append(slots[i].matches, n.El.Clone())
			}
		}
	}
	if width := queryScanWidth(len(ids)); width > 1 {
		fanout.Do(len(ids), width, scan)
	} else {
		for i := range ids {
			scan(i)
		}
	}
	var hits []QueryHit
	for i := range slots {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
		if len(slots[i].matches) > 0 {
			hits = append(hits, QueryHit{ID: ids[i], Matches: slots[i].matches})
		}
	}
	return hits, nil
}

// queryScanWidth picks the worker count for an n-document scan: 1
// (serial, zero goroutines) for small collections or single-core runs,
// otherwise the core count capped at queryScanMaxWidth.
func queryScanWidth(n int) int {
	if n < queryScanMinDocs {
		return 1
	}
	width := runtime.GOMAXPROCS(0)
	if width > queryScanMaxWidth {
		width = queryScanMaxWidth
	}
	return width
}

// MemoryBackend is a concurrency-safe in-memory byte store.
type MemoryBackend struct {
	mu   sync.RWMutex
	data map[string]map[string][]byte
}

// NewMemoryBackend returns an empty in-memory backend.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{data: map[string]map[string][]byte{}}
}

// Put implements Backend.
func (m *MemoryBackend) Put(collection, id string, doc []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	col := m.data[collection]
	if col == nil {
		col = map[string][]byte{}
		m.data[collection] = col
	}
	cp := make([]byte, len(doc))
	copy(cp, doc)
	col[id] = cp
	return nil
}

// Get implements Backend.
func (m *MemoryBackend) Get(collection, id string) ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	doc, ok := m.data[collection][id]
	if !ok {
		return nil, false, nil
	}
	cp := make([]byte, len(doc))
	copy(cp, doc)
	return cp, true, nil
}

// Has implements Haser: presence without copying the document bytes.
func (m *MemoryBackend) Has(collection, id string) (bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.data[collection][id]
	return ok, nil
}

// CondPut implements Backend: one lock acquisition covers the
// existence check and the write.
func (m *MemoryBackend) CondPut(collection, id string, doc []byte, wantExists bool) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	col := m.data[collection]
	if _, ok := col[id]; ok != wantExists {
		return false, nil
	}
	if col == nil {
		col = map[string][]byte{}
		m.data[collection] = col
	}
	cp := make([]byte, len(doc))
	copy(cp, doc)
	col[id] = cp
	return true, nil
}

// CondDelete implements Backend.
func (m *MemoryBackend) CondDelete(collection, id string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.data[collection][id]; !ok {
		return false, nil
	}
	delete(m.data[collection], id)
	return true, nil
}

// Delete implements Backend.
func (m *MemoryBackend) Delete(collection, id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	col, ok := m.data[collection]
	if !ok {
		return fmt.Errorf("xmldb: delete from missing collection %s", collection)
	}
	if _, ok := col[id]; !ok {
		return fmt.Errorf("xmldb: delete missing %s/%s", collection, id)
	}
	delete(col, id)
	return nil
}

// IDs implements Backend.
func (m *MemoryBackend) IDs(collection string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	col := m.data[collection]
	ids := make([]string, 0, len(col))
	for id := range col {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

package xmldb

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"altstacks/internal/xmlutil"
)

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	fb, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sfb, err := NewShardedFileBackend(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{
		"memory":       NewMemoryBackend(),
		"file":         fb,
		"sharded-mem":  NewShardedMemory(4),
		"sharded-file": sfb,
	}
}

func counterDoc(v int) *xmlutil.Element {
	return xmlutil.New("urn:c", "Counter").Add(
		xmlutil.NewText("urn:c", "Value", fmt.Sprint(v)))
}

func TestCRUDLifecycle(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			db := New(be, CostModel{})
			if err := db.Create("counters", "c1", counterDoc(0)); err != nil {
				t.Fatal(err)
			}
			if err := db.Create("counters", "c1", counterDoc(9)); !errors.Is(err, ErrExists) {
				t.Fatalf("duplicate create: %v", err)
			}
			got, err := db.Get("counters", "c1")
			if err != nil {
				t.Fatal(err)
			}
			if got.ChildText("urn:c", "Value") != "0" {
				t.Fatalf("value = %q", got.ChildText("urn:c", "Value"))
			}
			if err := db.Update("counters", "c1", counterDoc(5)); err != nil {
				t.Fatal(err)
			}
			got, _ = db.Get("counters", "c1")
			if got.ChildText("urn:c", "Value") != "5" {
				t.Fatal("update not visible")
			}
			if err := db.Delete("counters", "c1"); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Get("counters", "c1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("get after delete: %v", err)
			}
			if err := db.Delete("counters", "c1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete: %v", err)
			}
			if err := db.Update("counters", "c1", counterDoc(1)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("update missing: %v", err)
			}
		})
	}
}

func TestPutUpsert(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			db := New(be, CostModel{})
			// Out-of-band creation path: Put without a prior Create.
			if err := db.Put("c", "oob", counterDoc(1)); err != nil {
				t.Fatal(err)
			}
			ok, err := db.Exists("c", "oob")
			if err != nil || !ok {
				t.Fatalf("exists = %v, %v", ok, err)
			}
			if err := db.Put("c", "oob", counterDoc(2)); err != nil {
				t.Fatal(err)
			}
			got, _ := db.Get("c", "oob")
			if got.ChildText("urn:c", "Value") != "2" {
				t.Fatal("upsert did not replace")
			}
		})
	}
}

func TestIDsSorted(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			db := New(be, CostModel{})
			for _, id := range []string{"zz", "aa", "mm"} {
				if err := db.Create("col", id, counterDoc(0)); err != nil {
					t.Fatal(err)
				}
			}
			ids, err := db.IDs("col")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"aa", "mm", "zz"}
			if len(ids) != 3 || ids[0] != want[0] || ids[1] != want[1] || ids[2] != want[2] {
				t.Fatalf("ids = %v", ids)
			}
		})
	}
}

func TestIDsWithSlashes(t *testing.T) {
	// Grid-in-a-Box file resources use "DN/filename" ids.
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			db := New(be, CostModel{})
			id := "CN=alice,O=UVA/results.dat"
			if err := db.Create("files", id, counterDoc(1)); err != nil {
				t.Fatal(err)
			}
			got, err := db.Get("files", id)
			if err != nil || got == nil {
				t.Fatalf("get: %v", err)
			}
			ids, _ := db.IDs("files")
			if len(ids) != 1 || ids[0] != id {
				t.Fatalf("ids = %v", ids)
			}
		})
	}
}

func TestQueryAcrossCollection(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			db := New(be, CostModel{})
			for i := 0; i < 5; i++ {
				if err := db.Create("counters", fmt.Sprintf("c%d", i), counterDoc(i*10)); err != nil {
					t.Fatal(err)
				}
			}
			hits, err := db.Query("counters", "/Counter[Value>=20]")
			if err != nil {
				t.Fatal(err)
			}
			if len(hits) != 3 { // 20, 30, 40
				t.Fatalf("hits = %d, want 3 (%v)", len(hits), hits)
			}
			if hits[0].ID != "c2" {
				t.Fatalf("first hit = %s", hits[0].ID)
			}
		})
	}
}

func TestQueryBadExpression(t *testing.T) {
	db := NewMemory(CostModel{})
	if _, err := db.Query("c", "///"); err == nil {
		t.Fatal("bad expression accepted")
	}
}

func TestQueryEmptyCollection(t *testing.T) {
	db := NewMemory(CostModel{})
	hits, err := db.Query("none", "/a")
	if err != nil || hits != nil {
		t.Fatalf("hits=%v err=%v", hits, err)
	}
}

func TestStatsCounting(t *testing.T) {
	db := NewMemory(CostModel{})
	_ = db.Create("c", "1", counterDoc(0))
	_, _ = db.Get("c", "1")
	_, _ = db.Get("c", "1")
	_ = db.Update("c", "1", counterDoc(1))
	_ = db.Delete("c", "1")
	_, _ = db.Query("c", "/Counter")
	s := db.Stats()
	if s.Creates != 1 || s.Reads != 2 || s.Updates != 1 || s.Deletes != 1 || s.Queries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCostModelDelays(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	db := NewMemory(CostModel{Create: 30 * time.Millisecond, Read: 5 * time.Millisecond})
	start := time.Now()
	_ = db.Create("c", "1", counterDoc(0))
	createDur := time.Since(start)
	start = time.Now()
	_, _ = db.Get("c", "1")
	readDur := time.Since(start)
	if createDur < 30*time.Millisecond {
		t.Fatalf("create took %v, cost model not applied", createDur)
	}
	if readDur >= createDur {
		t.Fatalf("read (%v) not faster than create (%v)", readDur, createDur)
	}
}

func TestDocumentIsolation(t *testing.T) {
	// Mutating a document after storing must not change the stored copy.
	db := NewMemory(CostModel{})
	doc := counterDoc(1)
	_ = db.Create("c", "1", doc)
	doc.Children[0].Text = "999"
	got, _ := db.Get("c", "1")
	if got.ChildText("urn:c", "Value") != "1" {
		t.Fatal("stored document aliased caller's tree")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := NewMemory(CostModel{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				if err := db.Create("c", id, counterDoc(i)); err != nil {
					t.Errorf("create %s: %v", id, err)
					return
				}
				if _, err := db.Get("c", id); err != nil {
					t.Errorf("get %s: %v", id, err)
					return
				}
				if err := db.Update("c", id, counterDoc(i+1)); err != nil {
					t.Errorf("update %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	ids, err := db.IDs("c")
	if err != nil || len(ids) != 8*50 {
		t.Fatalf("ids = %d, err = %v", len(ids), err)
	}
}

func TestFileBackendPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fb, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := New(fb, CostModel{})
	if err := db.Create("c", "persist", counterDoc(7)); err != nil {
		t.Fatal(err)
	}
	fb2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	db2 := New(fb2, CostModel{})
	got, err := db2.Get("c", "persist")
	if err != nil {
		t.Fatal(err)
	}
	if got.ChildText("urn:c", "Value") != "7" {
		t.Fatal("document lost across reopen")
	}
}

// Property: after any sequence of create/delete operations, IDs()
// reflects exactly the live set.
func TestPropertyIDsMatchLiveSet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := NewMemory(CostModel{})
		live := map[string]bool{}
		for i := 0; i < 60; i++ {
			id := fmt.Sprintf("d%d", r.Intn(20))
			if r.Intn(2) == 0 {
				err := db.Create("c", id, counterDoc(i))
				if live[id] != (err != nil) {
					return false // create must fail iff already live
				}
				live[id] = true
			} else {
				err := db.Delete("c", id)
				if live[id] == (err != nil) {
					return false // delete must succeed iff live
				}
				delete(live, id)
			}
		}
		ids, err := db.IDs("c")
		if err != nil || len(ids) != len(live) {
			return false
		}
		for _, id := range ids {
			if !live[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

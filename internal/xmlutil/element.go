// Package xmlutil provides a small namespace-aware XML element tree.
//
// Every layer of both software stacks traffics in XML documents whose
// schemas are not known statically: WS-Transfer bodies are literally
// xsd:any (paper §2.3 — "only an <XSD:any> tag exists"), WSRF resource
// property documents are service-defined, and the XML database stores
// arbitrary documents. encoding/xml's struct mapping cannot represent
// that, so this package supplies the dynamic document model: parsing,
// deterministic namespace-aware serialization, canonicalization (needed
// by the WS-Security signature layer), and structural helpers.
package xmlutil

import (
	"bytes"
	"crypto/sha256"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Element is one XML element: a resolved name, namespace-resolved
// attributes, character data, and child elements. Mixed content is
// simplified: all character data of an element is concatenated into
// Text. This is sufficient for SOAP messaging, where elements carry
// either text or children, not interleaved prose.
type Element struct {
	Name     xml.Name // Space is the namespace URI ("" = no namespace)
	Attrs    []xml.Attr
	Text     string
	Children []*Element
}

// New returns an element with the given namespace URI and local name.
func New(space, local string) *Element {
	return &Element{Name: xml.Name{Space: space, Local: local}}
}

// NewText returns an element containing only character data.
func NewText(space, local, text string) *Element {
	e := New(space, local)
	e.Text = text
	return e
}

// Add appends children and returns the receiver for chaining.
func (e *Element) Add(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// SetText replaces the element's character data and returns the receiver.
func (e *Element) SetText(text string) *Element {
	e.Text = text
	return e
}

// SetAttr sets (or replaces) an attribute and returns the receiver.
func (e *Element) SetAttr(space, local, value string) *Element {
	for i := range e.Attrs {
		if e.Attrs[i].Name.Space == space && e.Attrs[i].Name.Local == local {
			e.Attrs[i].Value = value
			return e
		}
	}
	e.Attrs = append(e.Attrs, xml.Attr{Name: xml.Name{Space: space, Local: local}, Value: value})
	return e
}

// Attr returns the value of the named attribute and whether it exists.
func (e *Element) Attr(space, local string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name.Space == space && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// AttrValue returns the attribute value or "" when absent.
func (e *Element) AttrValue(space, local string) string {
	v, _ := e.Attr(space, local)
	return v
}

// Child returns the first child with the given namespace URI and local
// name, or nil. An empty space matches children in no namespace; use
// ChildLocal to match any namespace.
func (e *Element) Child(space, local string) *Element {
	for _, c := range e.Children {
		if c.Name.Space == space && c.Name.Local == local {
			return c
		}
	}
	return nil
}

// ChildLocal returns the first child with the given local name in any
// namespace, or nil.
func (e *Element) ChildLocal(local string) *Element {
	for _, c := range e.Children {
		if c.Name.Local == local {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all children with the given name.
func (e *Element) ChildrenNamed(space, local string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Name.Space == space && c.Name.Local == local {
			out = append(out, c)
		}
	}
	return out
}

// Path descends through a chain of (space, local) pairs expressed as
// xml.Names, returning the first matching element at each step, or nil
// if any step is missing.
func (e *Element) Path(names ...xml.Name) *Element {
	cur := e
	for _, n := range names {
		cur = cur.Child(n.Space, n.Local)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// TrimText returns the element's character data with surrounding
// whitespace removed.
func (e *Element) TrimText() string { return strings.TrimSpace(e.Text) }

// ChildText returns the trimmed text of the first matching child, or "".
func (e *Element) ChildText(space, local string) string {
	if c := e.Child(space, local); c != nil {
		return c.TrimText()
	}
	return ""
}

// Clone returns a deep copy of the element.
func (e *Element) Clone() *Element {
	cp := &Element{Name: e.Name, Text: e.Text}
	if len(e.Attrs) > 0 {
		cp.Attrs = make([]xml.Attr, len(e.Attrs))
		copy(cp.Attrs, e.Attrs)
	}
	for _, c := range e.Children {
		cp.Children = append(cp.Children, c.Clone())
	}
	return cp
}

// Walk visits e and its descendants in document order. If fn returns
// false the walk does not descend into that element's children.
func (e *Element) Walk(fn func(*Element) bool) {
	if !fn(e) {
		return
	}
	for _, c := range e.Children {
		c.Walk(fn)
	}
}

// Equal reports deep structural equality: names, trimmed text,
// attribute sets (order-insensitive), and child sequences must match.
func Equal(a, b *Element) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.TrimText() != b.TrimText() || len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for _, attr := range a.Attrs {
		v, ok := b.Attr(attr.Name.Space, attr.Name.Local)
		if !ok || v != attr.Value {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the element as XML, for debugging and logging.
func (e *Element) String() string { return string(e.Marshal()) }

// wellKnownPrefixes gives stable, human-readable prefixes to the
// namespaces that appear constantly in message traces.
var wellKnownPrefixes = map[string]string{
	"http://schemas.xmlsoap.org/soap/envelope/":                                          "soap",
	"http://schemas.xmlsoap.org/ws/2004/08/addressing":                                   "wsa",
	"http://docs.oasis-open.org/wsrf/rp-2":                                               "wsrp",
	"http://docs.oasis-open.org/wsrf/rl-2":                                               "wsrl",
	"http://docs.oasis-open.org/wsrf/sg-2":                                               "wssg",
	"http://docs.oasis-open.org/wsrf/bf-2":                                               "wsbf",
	"http://docs.oasis-open.org/wsn/b-2":                                                 "wsnt",
	"http://docs.oasis-open.org/wsn/br-2":                                                "wsntbr",
	"http://docs.oasis-open.org/wsn/t-1":                                                 "wstop",
	"http://schemas.xmlsoap.org/ws/2004/09/transfer":                                     "wxf",
	"http://schemas.xmlsoap.org/ws/2004/08/eventing":                                     "wse",
	"http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-secext-1.0.xsd":  "wsse",
	"http://docs.oasis-open.org/wss/2004/01/oasis-200401-wss-wssecurity-utility-1.0.xsd": "wsu",
	"http://www.w3.org/2000/09/xmldsig#":                                                 "ds",
}

// nsContext tracks URI→prefix assignments during serialization. The
// used set is the reverse (prefix-side) index, so collision checks are
// a map probe instead of a scan over every assignment so far.
type nsContext struct {
	prefix map[string]string
	used   map[string]bool
	order  []string
	next   int
}

func newNSContext() *nsContext {
	return &nsContext{prefix: map[string]string{}, used: map[string]bool{}}
}

// reset readies a recycled context for a new document, keeping the map
// buckets and order slice capacity.
func (c *nsContext) reset() {
	if c.prefix == nil {
		c.prefix = map[string]string{}
		c.used = map[string]bool{}
	}
	clear(c.prefix)
	clear(c.used)
	c.order = c.order[:0]
	c.next = 0
}

func (c *nsContext) get(uri string) string {
	if uri == "" {
		return ""
	}
	if p, ok := c.prefix[uri]; ok {
		return p
	}
	p, ok := wellKnownPrefixes[uri]
	if !ok || c.taken(p) {
		c.next++
		p = genPrefix(c.next)
		for c.taken(p) {
			c.next++
			p = genPrefix(c.next)
		}
	}
	c.prefix[uri] = p
	c.used[p] = true
	c.order = append(c.order, uri)
	return p
}

func (c *nsContext) taken(p string) bool { return c.used[p] }

// genPrefixes interns the generated prefixes every document reuses, so
// prefix assignment allocates nothing in the common case.
var genPrefixes = [16]string{"ns0", "ns1", "ns2", "ns3", "ns4", "ns5", "ns6", "ns7",
	"ns8", "ns9", "ns10", "ns11", "ns12", "ns13", "ns14", "ns15"}

func genPrefix(n int) string {
	if n >= 0 && n < len(genPrefixes) {
		return genPrefixes[n]
	}
	return fmt.Sprintf("ns%d", n)
}

// bufPool recycles serialization buffers. Marshal is the single
// hottest call in both stacks — every request, response, notification,
// database write, and signature digest funnels through it — so the
// working buffer must not be reallocated per message.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Writer is the sink a streamed serialization renders into: an
// io.Writer with the byte- and string-granular methods the serializer
// emits through. *bytes.Buffer and *bufio.Writer both satisfy it.
// MarshalTo ignores write errors, so sinks must be sticky-error
// (buffered) writers whose failure surfaces at flush time.
type Writer interface {
	io.Writer
	WriteByte(byte) error
	WriteString(string) (int, error)
}

// Marshal serializes the element tree to XML. All namespaces used in
// the subtree are declared on the root element; prefixes are assigned
// deterministically in preorder first-use order, so output for a given
// tree is stable across runs.
func (e *Element) Marshal() []byte {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	marshalInto(b, e)
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	bufPool.Put(b)
	return out
}

// MarshalTo streams the same serialization Marshal produces directly
// into w, with no intermediate []byte. The wire paths (HTTP
// request/response bodies, TCP event frames) marshal straight into
// their pooled transmit buffers through this.
func (e *Element) MarshalTo(w Writer) { marshalInto(w, e) }

// marshalInto is the shared core of Marshal and MarshalTo. It is
// generic over the sink so the dominant caller (Marshal's
// *bytes.Buffer) keeps direct, inlinable method calls instead of
// paying interface dispatch per emitted token.
func marshalInto[W Writer](w W, e *Element) {
	ctx := ctxPool.Get().(*nsContext)
	ctx.reset()
	// Pre-assign prefixes in preorder so declarations are stable.
	e.Walk(func(el *Element) bool {
		ctx.get(el.Name.Space)
		for _, a := range el.Attrs {
			if a.Name.Space != "" {
				ctx.get(a.Name.Space)
			}
		}
		return true
	})
	writeElement(w, e, ctx, true, false)
	ctxPool.Put(ctx)
}

// ctxPool and canonPool recycle the namespace-assignment state between
// serializations: the signature path canonicalizes several message
// parts per request, and fresh maps for each were a measurable share
// of the signed round trip's allocations.
var ctxPool = sync.Pool{New: func() any { return newNSContext() }}

type canonState struct {
	ctx    nsContext
	uris   map[string]bool
	sorted []string
}

var canonPool = sync.Pool{New: func() any {
	return &canonState{uris: map[string]bool{}}
}}

// Canonical serializes the element tree in a normalized form suitable
// for digesting and signing: same prefix discipline as Marshal, but
// attributes sorted by (namespace, local name) and all text trimmed.
// This plays the role of XML canonicalization (C14N) in the WS-Security
// layer; as long as signer and verifier share the algorithm, signatures
// are stable, which is the property the paper's X.509 experiments need.
func (e *Element) Canonical() []byte {
	// Prefixes are assigned in sorted-URI order so the canonical form is
	// invariant under attribute reordering (prefix assignment must not
	// depend on document order, which reordering perturbs).
	var out []byte
	e.withCanonicalBuffer(func(b *bytes.Buffer) {
		out = make([]byte, b.Len())
		copy(out, b.Bytes())
	})
	return out
}

// CanonicalSum256 returns the SHA-256 digest of the canonical form
// without materializing the serialized bytes outside the pooled
// buffer — the signature layer digests several message parts per
// request and never needs the bytes themselves.
func (e *Element) CanonicalSum256() [sha256.Size]byte {
	var sum [sha256.Size]byte
	e.withCanonicalBuffer(func(b *bytes.Buffer) {
		sum = sha256.Sum256(b.Bytes())
	})
	return sum
}

// withCanonicalBuffer renders the canonical form into pooled state and
// hands the buffer to fn. Both pooled values go back to their pools
// when fn returns — the Get/Put span begins and ends in this function,
// so fn must copy or digest the bytes, never retain them. (The
// previous shape returned the pooled pair to the caller, which is
// exactly the escape ogsalint/poolescape exists to forbid.)
func (e *Element) withCanonicalBuffer(fn func(b *bytes.Buffer)) {
	st := canonPool.Get().(*canonState)
	st.ctx.reset()
	clear(st.uris)
	st.sorted = st.sorted[:0]
	e.Walk(func(el *Element) bool {
		st.uris[el.Name.Space] = true
		for _, a := range el.Attrs {
			if a.Name.Space != "" {
				st.uris[a.Name.Space] = true
			}
		}
		return true
	})
	for u := range st.uris {
		if u != "" {
			st.sorted = append(st.sorted, u)
		}
	}
	sort.Strings(st.sorted)
	for _, u := range st.sorted {
		st.ctx.get(u)
	}
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	writeElement(b, e, &st.ctx, true, true)
	fn(b)
	bufPool.Put(b)
	canonPool.Put(st)
}

func writeElement[W Writer](w W, e *Element, ctx *nsContext, root, canonical bool) {
	name := e.qname(ctx)
	w.WriteByte('<')
	w.WriteString(name)
	if root {
		for _, uri := range ctx.order {
			w.WriteString(` xmlns:`)
			w.WriteString(ctx.prefix[uri])
			w.WriteString(`="`)
			escapeInto(w, uri)
			w.WriteString(`"`)
		}
	}
	attrs := e.Attrs
	if canonical && len(attrs) > 1 {
		attrs = append([]xml.Attr(nil), attrs...)
		sort.Slice(attrs, func(i, j int) bool {
			if attrs[i].Name.Space != attrs[j].Name.Space {
				return attrs[i].Name.Space < attrs[j].Name.Space
			}
			return attrs[i].Name.Local < attrs[j].Name.Local
		})
	}
	for _, a := range attrs {
		w.WriteByte(' ')
		if a.Name.Space != "" {
			w.WriteString(ctx.prefix[a.Name.Space])
			w.WriteByte(':')
		}
		w.WriteString(a.Name.Local)
		w.WriteString(`="`)
		escapeInto(w, a.Value)
		w.WriteString(`"`)
	}
	text := e.Text
	if canonical {
		text = strings.TrimSpace(text)
	}
	if text == "" && len(e.Children) == 0 {
		w.WriteString("/>")
		return
	}
	w.WriteByte('>')
	escapeInto(w, text)
	for _, c := range e.Children {
		writeElement(w, c, ctx, false, canonical)
	}
	w.WriteString("</")
	w.WriteString(name)
	w.WriteByte('>')
}

func (e *Element) qname(ctx *nsContext) string {
	if e.Name.Space == "" {
		return e.Name.Local
	}
	return ctx.prefix[e.Name.Space] + ":" + e.Name.Local
}

// escapeNeeded lists every byte escapeInto rewrites; all are ASCII, so
// spans between occurrences can be copied wholesale without decoding
// runes. Typical SOAP content (URIs, ids, numbers) contains none, and
// then the whole string is a single WriteString.
const escapeNeeded = "&<>\"'"

func escapeInto[W Writer](w W, s string) {
	for {
		i := strings.IndexAny(s, escapeNeeded)
		if i < 0 {
			w.WriteString(s)
			return
		}
		w.WriteString(s[:i])
		switch s[i] {
		case '&':
			w.WriteString("&amp;")
		case '<':
			w.WriteString("&lt;")
		case '>':
			w.WriteString("&gt;")
		case '"':
			w.WriteString("&quot;")
		case '\'':
			w.WriteString("&apos;")
		}
		s = s[i+1:]
	}
}

package xmlutil

import (
	"encoding/xml"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	e := MustParse(`<a><b>hi</b><c x="1"/></a>`)
	if e.Name.Local != "a" {
		t.Fatalf("root = %q, want a", e.Name.Local)
	}
	if got := e.ChildText("", "b"); got != "hi" {
		t.Fatalf("b text = %q, want hi", got)
	}
	c := e.Child("", "c")
	if c == nil {
		t.Fatal("missing child c")
	}
	if v, ok := c.Attr("", "x"); !ok || v != "1" {
		t.Fatalf("c@x = %q,%v, want 1,true", v, ok)
	}
}

func TestParseNamespaces(t *testing.T) {
	doc := `<s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/">
	  <s:Body><m:Op xmlns:m="urn:m" m:mode="fast">x</m:Op></s:Body>
	</s:Envelope>`
	e := MustParse(doc)
	if e.Name.Space != "http://schemas.xmlsoap.org/soap/envelope/" {
		t.Fatalf("root space = %q", e.Name.Space)
	}
	body := e.Child("http://schemas.xmlsoap.org/soap/envelope/", "Body")
	if body == nil {
		t.Fatal("no Body")
	}
	op := body.Child("urn:m", "Op")
	if op == nil {
		t.Fatal("no Op")
	}
	if v := op.AttrValue("urn:m", "mode"); v != "fast" {
		t.Fatalf("mode = %q, want fast", v)
	}
	if op.TrimText() != "x" {
		t.Fatalf("Op text = %q", op.TrimText())
	}
}

func TestParseDropsXmlnsAttrs(t *testing.T) {
	e := MustParse(`<a xmlns="urn:x" xmlns:y="urn:y"><y:b/></a>`)
	if len(e.Attrs) != 0 {
		t.Fatalf("attrs = %v, want none (xmlns decls dropped)", e.Attrs)
	}
	if e.Child("urn:y", "b") == nil {
		t.Fatal("prefixed child not resolved")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "<a>", "<a></b>", "<a/><b/>", "text only"} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	orig := New("urn:svc", "Counter").
		SetAttr("", "id", "7").
		Add(
			NewText("urn:svc", "Value", "42"),
			New("urn:other", "Meta").SetAttr("urn:other", "k", "v"),
		)
	parsed, err := Parse(orig.Marshal())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !Equal(orig, parsed) {
		t.Fatalf("round trip mismatch:\norig   %s\nparsed %s", orig, parsed)
	}
}

func TestMarshalEscaping(t *testing.T) {
	e := NewText("", "a", `<&>"'`).SetAttr("", "x", `a"b<c&`)
	out := string(e.Marshal())
	if strings.ContainsAny(strings.TrimPrefix(strings.TrimSuffix(out, "</a>"), "<a"), "") {
		// structural check below is the real assertion
	}
	parsed, err := Parse([]byte(out))
	if err != nil {
		t.Fatalf("escaped output unparseable: %v (%s)", err, out)
	}
	if parsed.Text != `<&>"'` {
		t.Fatalf("text = %q", parsed.Text)
	}
	if v := parsed.AttrValue("", "x"); v != `a"b<c&` {
		t.Fatalf("attr = %q", v)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	e := New("urn:a", "r").Add(New("urn:b", "x"), New("urn:c", "y"))
	first := string(e.Marshal())
	for i := 0; i < 10; i++ {
		if got := string(e.Marshal()); got != first {
			t.Fatalf("marshal not deterministic: %q vs %q", first, got)
		}
	}
}

func TestWellKnownPrefixes(t *testing.T) {
	e := New("http://schemas.xmlsoap.org/soap/envelope/", "Envelope")
	out := string(e.Marshal())
	if !strings.Contains(out, "soap:Envelope") {
		t.Fatalf("expected soap prefix in %q", out)
	}
}

func TestCanonicalSortsAttrs(t *testing.T) {
	a := New("", "e").SetAttr("", "z", "1").SetAttr("", "a", "2")
	b := New("", "e").SetAttr("", "a", "2").SetAttr("", "z", "1")
	if string(a.Canonical()) != string(b.Canonical()) {
		t.Fatalf("canonical forms differ:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	if string(a.Marshal()) == string(b.Marshal()) {
		t.Log("plain marshal coincidentally equal (attr order preserved)")
	}
}

func TestCanonicalTrimsText(t *testing.T) {
	a := NewText("", "e", "  x  ")
	b := NewText("", "e", "x")
	if string(a.Canonical()) != string(b.Canonical()) {
		t.Fatalf("canonical should trim text: %s vs %s", a.Canonical(), b.Canonical())
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := New("", "a").SetAttr("", "k", "v").Add(NewText("", "b", "t"))
	cp := orig.Clone()
	cp.Children[0].Text = "changed"
	cp.SetAttr("", "k", "other")
	if orig.Children[0].Text != "t" || orig.AttrValue("", "k") != "v" {
		t.Fatal("mutating clone affected original")
	}
	if !Equal(orig, orig.Clone()) {
		t.Fatal("clone not equal to original")
	}
}

func TestPathAndChildren(t *testing.T) {
	e := MustParse(`<a xmlns="u"><b><c>1</c><c>2</c></b></a>`)
	n := func(l string) xml.Name { return xml.Name{Space: "u", Local: l} }
	c := e.Path(n("b"), n("c"))
	if c == nil || c.TrimText() != "1" {
		t.Fatalf("Path found %v", c)
	}
	if e.Path(n("b"), n("zz")) != nil {
		t.Fatal("Path should return nil for missing step")
	}
	cs := e.Child("u", "b").ChildrenNamed("u", "c")
	if len(cs) != 2 || cs[1].TrimText() != "2" {
		t.Fatalf("ChildrenNamed = %v", cs)
	}
}

func TestWalkPruning(t *testing.T) {
	e := MustParse(`<a><b><c/></b><d/></a>`)
	var visited []string
	e.Walk(func(el *Element) bool {
		visited = append(visited, el.Name.Local)
		return el.Name.Local != "b" // prune below b
	})
	want := []string{"a", "b", "d"}
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	base := func() *Element {
		return New("u", "a").SetAttr("", "k", "v").Add(NewText("u", "b", "t"))
	}
	if !Equal(base(), base()) {
		t.Fatal("identical trees not Equal")
	}
	cases := map[string]*Element{
		"name":       New("u", "z").SetAttr("", "k", "v").Add(NewText("u", "b", "t")),
		"attr value": base().SetAttr("", "k", "other"),
		"text":       func() *Element { e := base(); e.Children[0].Text = "x"; return e }(),
		"extra kid":  base().Add(New("u", "c")),
	}
	for label, other := range cases {
		if Equal(base(), other) {
			t.Errorf("Equal true despite differing %s", label)
		}
	}
}

// randomTree builds a random element tree for property testing.
func randomTree(r *rand.Rand, depth int) *Element {
	spaces := []string{"", "urn:a", "urn:b", "http://example.org/x"}
	locals := []string{"alpha", "beta", "gamma", "delta", "res"}
	e := New(spaces[r.Intn(len(spaces))], locals[r.Intn(len(locals))])
	// Root must have a name; no-namespace root is fine.
	for i := 0; i < r.Intn(3); i++ {
		e.SetAttr(spaces[r.Intn(len(spaces))], locals[r.Intn(len(locals))]+"Attr", randText(r))
	}
	if depth > 0 && r.Intn(2) == 0 {
		for i := 0; i < 1+r.Intn(3); i++ {
			e.Add(randomTree(r, depth-1))
		}
	} else {
		e.Text = randText(r)
	}
	return e
}

func randText(r *rand.Rand) string {
	chars := []rune(`abc XYZ 123 <>&"' éλ`)
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(chars[r.Intn(len(chars))])
	}
	return strings.TrimSpace(b.String())
}

func TestPropertyMarshalParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := randomTree(r, 3)
		parsed, err := Parse(orig.Marshal())
		if err != nil {
			t.Logf("seed %d: parse error %v on %s", seed, err, orig.Marshal())
			return false
		}
		if !Equal(orig, parsed) {
			t.Logf("seed %d:\norig   %s\nparsed %s", seed, orig, parsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCanonicalStableUnderAttrPermutation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomTree(r, 2)
		perm := e.Clone()
		r.Shuffle(len(perm.Attrs), func(i, j int) {
			perm.Attrs[i], perm.Attrs[j] = perm.Attrs[j], perm.Attrs[i]
		})
		return string(e.Canonical()) == string(perm.Canonical())
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

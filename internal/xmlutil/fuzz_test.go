package xmlutil

import (
	"strings"
	"testing"
)

// FuzzParse drives the hand-rolled parser with adversarial input. Two
// invariants, checked on every input the fuzzer invents:
//
//  1. Parse never panics — the container feeds it raw network bytes.
//  2. Anything Parse accepts survives Marshal → Parse unchanged
//     (serializer and parser agree on the document model).
//
// Differential agreement with encoding/xml is pinned separately by
// TestParseDifferential over the curated corpus; re-running the
// reference decoder here would make the fuzzer measure its speed, not
// this parser's robustness.
func FuzzParse(f *testing.F) {
	for _, tc := range parseCorpus {
		f.Add([]byte(tc.doc))
	}
	// Seeds aimed at the tokenizer's corners: entity edges, nesting
	// depth, truncated constructs, namespace machinery.
	for _, s := range []string{
		`<a>&#x10FFFF;&#xD7FF;&#32;</a>`,
		`<a>&amp;&ampx;&;&#;&#x;</a>`,
		`<a b="&#`,
		`<![CDATA[`,
		`<a><![CDATA[]]]]><![CDATA[>]]></a>`,
		`<?xml version="1.0" encoding=`,
		`<!DOCTYPE a [ <!ENTITY x "<y>"> ]><a>&x;</a>`,
		`<!DOCTYPE a [ "unterminated ]><a/>`,
		`<a xmlns=">"/>`,
		`<a xmlns:p="u" xmlns:p="v"/>`,
		`<p:a xmlns:p=""/>`,
		`<a/><a/>`,
		"<a>\xc3</a>",
		"<a>\xed\xa0\x80</a>",
		"<\xff\xfe>",
		strings.Repeat("<d>", 500),
		strings.Repeat("<d>", 200) + strings.Repeat("</d>", 200),
		strings.Repeat("<a b='1' ", 50),
		"<a>" + strings.Repeat("&lt;", 300) + "</a>",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		el, err := Parse(data) // must not panic
		if err != nil {
			return
		}
		re, err := Parse(el.Marshal())
		if err != nil {
			t.Fatalf("reparse of marshaled accepted doc failed: %v\ninput: %q", err, data)
		}
		if !equalStrict(el, re) {
			t.Fatalf("marshal/parse round trip changed the tree\ninput: %q", data)
		}
	})
}

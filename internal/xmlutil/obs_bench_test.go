// OBS_BENCH flips the observability layer on for a benchmark run (see
// the root package's obs_bench_test.go), so Parse's instrumentation
// overhead — one atomic bool load plus two counter adds per call — is
// measurable against the no-op default.
package xmlutil

import (
	"os"

	"altstacks/internal/obs"
)

func init() {
	if os.Getenv("OBS_BENCH") != "" {
		obs.Enable()
	}
}

package xmlutil

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"

	"altstacks/internal/obs"
)

// Parse volume counters (self-gated; one atomic bool load per parse
// when observability is off).
var (
	parseTotal = obs.NewCounter("ogsa_xml_parse_total", "",
		"XML documents parsed")
	parseBytesTotal = obs.NewCounter("ogsa_xml_parse_bytes_total", "",
		"input bytes consumed by the XML parser")
)

// Parse decodes one XML document into an element tree. Namespace
// prefixes are resolved (Element names and attribute names carry
// namespace URIs); xmlns declaration attributes are dropped since they
// are reconstructed on serialization. Whitespace-only character data in
// elements that have child elements is discarded.
//
// Parse is a hand-rolled single-pass parser over the input bytes — the
// inbound counterpart of the pooled serializer. Every request,
// notification delivery, and database read funnels through it, so it
// avoids the per-token allocation of encoding/xml: parser state is
// pooled, elements and attributes are block-allocated, and text spans
// without entity references alias a single upfront copy of the input
// (the one copy that makes the result independent of the caller's
// buffer, which the container recycles). ParseReader remains the
// encoding/xml-based reference implementation; TestParseDifferential
// pins the two to identical output.
func Parse(data []byte) (*Element, error) {
	parseTotal.Inc()
	parseBytesTotal.Add(int64(len(data)))
	p := parserPool.Get().(*parser)
	p.s = string(data)
	root, err := p.parse()
	p.release()
	parserPool.Put(p)
	if err != nil {
		return nil, err
	}
	return root, nil
}

// ParseReader decodes one XML document from r via encoding/xml. It is
// the reference implementation Parse is differentially tested against;
// the two accept the same documents and produce identical trees.
func ParseReader(r io.Reader) (*Element, error) {
	dec := xml.NewDecoder(r)
	var root *Element
	var stack []*Element
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlutil: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := &Element{Name: t.Name}
			for _, a := range t.Attr {
				if isNamespaceDecl(a.Name) {
					continue
				}
				el.Attrs = append(el.Attrs, a)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmlutil: parse: multiple root elements")
				}
				root = el
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlutil: parse: unbalanced end element %s", t.Name.Local)
			}
			done := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			// Drop insignificant whitespace in container elements.
			if len(done.Children) > 0 && strings.TrimSpace(done.Text) == "" {
				done.Text = ""
			}
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += string(t)
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Ignored: comments and processing instructions carry no
			// message semantics in any of the WS-* specifications.
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlutil: parse: unexpected EOF inside %s", stack[len(stack)-1].Name.Local)
	}
	if root == nil {
		return nil, fmt.Errorf("xmlutil: parse: empty document")
	}
	return root, nil
}

// MustParse is Parse for static document literals in tests and
// examples; it panics on malformed input.
func MustParse(data string) *Element {
	e, err := Parse([]byte(data))
	if err != nil {
		panic(err)
	}
	return e
}

func isNamespaceDecl(n xml.Name) bool {
	return n.Space == "xmlns" || (n.Space == "" && n.Local == "xmlns")
}

// xmlNamespaceURI is the namespace the reserved "xml" prefix is bound
// to without declaration (Namespaces in XML 1.0 §3).
const xmlNamespaceURI = "http://www.w3.org/XML/1998/namespace"

func errParse(format string, args ...any) error {
	return fmt.Errorf("xmlutil: parse: "+format, args...)
}

// elemSlabSize is how many Elements (and attributes) are allocated per
// block. Handed-out entries escape with the document; only the unused
// tail is retained for the next parse.
const elemSlabSize = 64

type rawAttr struct {
	prefix, local, value string
}

type frame struct {
	el      *Element
	rawName string // name as written, for end-tag matching
	nsMark  int    // namespace binding stack depth at open
}

// parser is the reusable state of one Parse call. Everything except
// the element/attribute slabs (whose handed-out entries belong to the
// returned document) survives in a sync.Pool between calls.
type parser struct {
	s    string
	pos  int
	root *Element

	frames   []frame
	nsPrefix []string // parallel binding stacks; "" prefix = default ns
	nsURI    []string
	scratch  []rawAttr

	elemSlab []Element
	attrSlab []xml.Attr
}

var parserPool = sync.Pool{New: func() any { return new(parser) }}

// release drops every reference into the parsed document so pooled
// state cannot pin it (or its backing input string) in memory.
func (p *parser) release() {
	p.s = ""
	p.pos = 0
	p.root = nil
	frames := p.frames[:cap(p.frames)]
	for i := range frames {
		frames[i] = frame{}
	}
	p.frames = p.frames[:0]
	pre, uri := p.nsPrefix[:cap(p.nsPrefix)], p.nsURI[:cap(p.nsURI)]
	for i := range pre {
		pre[i] = ""
	}
	for i := range uri {
		uri[i] = ""
	}
	p.nsPrefix, p.nsURI = p.nsPrefix[:0], p.nsURI[:0]
	scratch := p.scratch[:cap(p.scratch)]
	for i := range scratch {
		scratch[i] = rawAttr{}
	}
	p.scratch = p.scratch[:0]
}

func (p *parser) newElement() *Element {
	if len(p.elemSlab) == 0 {
		p.elemSlab = make([]Element, elemSlabSize)
	}
	el := &p.elemSlab[0]
	p.elemSlab = p.elemSlab[1:]
	return el
}

func (p *parser) newAttrs(n int) []xml.Attr {
	if len(p.attrSlab) < n {
		p.attrSlab = make([]xml.Attr, max(elemSlabSize, n))
	}
	a := p.attrSlab[:n:n]
	p.attrSlab = p.attrSlab[n:]
	return a
}

func (p *parser) parse() (*Element, error) {
	s := p.s
	for p.pos < len(s) {
		if s[p.pos] != '<' {
			var span string
			if lt := strings.IndexByte(s[p.pos:], '<'); lt < 0 {
				span = s[p.pos:]
				p.pos = len(s)
			} else {
				span = s[p.pos : p.pos+lt]
				p.pos += lt
			}
			dec, err := decodeText(span, true)
			if err != nil {
				return nil, err
			}
			p.appendText(dec)
			continue
		}
		if p.pos+1 >= len(s) {
			return nil, errParse("unexpected EOF")
		}
		var err error
		switch s[p.pos+1] {
		case '/':
			err = p.endTag()
		case '!':
			err = p.bang()
		case '?':
			err = p.procInst()
		default:
			err = p.startTag()
		}
		if err != nil {
			return nil, err
		}
	}
	if len(p.frames) != 0 {
		return nil, errParse("unexpected EOF inside %s", p.frames[len(p.frames)-1].el.Name.Local)
	}
	if p.root == nil {
		return nil, errParse("empty document")
	}
	return p.root, nil
}

// appendText adds character data to the open element; data outside the
// root element is validated but discarded, matching the reference
// tree-builder.
func (p *parser) appendText(dec string) {
	if n := len(p.frames); n > 0 {
		el := p.frames[n-1].el
		if el.Text == "" {
			el.Text = dec
		} else {
			el.Text += dec
		}
	}
}

func (p *parser) skipSpace() {
	s := p.s
	for p.pos < len(s) {
		switch s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// name consumes one XML name. ASCII follows the spec's production;
// multi-byte runes are accepted wholesale (a lenient superset of the
// spec's letter tables, matching every document either stack emits).
func (p *parser) name() (string, error) {
	s := p.s
	start := p.pos
	if start >= len(s) {
		return "", errParse("unexpected EOF")
	}
	if c := s[start]; c < 0x80 && !nameStartByte[c] {
		return "", errParse("invalid XML name at byte %d", start)
	}
	i := start
	for i < len(s) {
		c := s[i]
		if c >= 0x80 {
			r, size := utf8.DecodeRuneInString(s[i:])
			if r == utf8.RuneError && size == 1 {
				return "", errParse("invalid UTF-8")
			}
			i += size
			continue
		}
		if !nameByte[c] {
			break
		}
		i++
	}
	p.pos = i
	return s[start:i], nil
}

// splitName separates an optional namespace prefix. A leading or
// trailing colon is kept as part of the local name (as the reference
// decoder does); more than one interior colon is rejected.
func splitName(n string) (prefix, local string, err error) {
	i := strings.IndexByte(n, ':')
	if i <= 0 || i == len(n)-1 {
		return "", n, nil
	}
	if strings.IndexByte(n[i+1:], ':') >= 0 {
		return "", "", errParse("invalid XML name %s", n)
	}
	return n[:i], n[i+1:], nil
}

func (p *parser) pushNS(prefix, uri string) {
	p.nsPrefix = append(p.nsPrefix, prefix)
	p.nsURI = append(p.nsURI, uri)
}

func (p *parser) popNS(mark int) {
	p.nsPrefix = p.nsPrefix[:mark]
	p.nsURI = p.nsURI[:mark]
}

// resolve maps a prefix to its namespace URI using the innermost
// binding. Unprefixed attributes are in no namespace; an undeclared
// prefix resolves to itself, the reference decoder's behavior.
func (p *parser) resolve(prefix string, isAttr bool) string {
	if isAttr && prefix == "" {
		return ""
	}
	if prefix == "xml" {
		return xmlNamespaceURI
	}
	for i := len(p.nsPrefix) - 1; i >= 0; i-- {
		if p.nsPrefix[i] == prefix {
			return p.nsURI[i]
		}
	}
	return prefix
}

func (p *parser) startTag() error {
	s := p.s
	p.pos++ // '<'
	raw, err := p.name()
	if err != nil {
		return err
	}
	nsMark := len(p.nsPrefix)
	p.scratch = p.scratch[:0]
	selfClose := false
	for {
		p.skipSpace()
		if p.pos >= len(s) {
			return errParse("unexpected EOF in element <%s>", raw)
		}
		if c := s[p.pos]; c == '>' {
			p.pos++
			break
		} else if c == '/' {
			if p.pos+1 >= len(s) || s[p.pos+1] != '>' {
				return errParse("expected /> closing element <%s>", raw)
			}
			p.pos += 2
			selfClose = true
			break
		}
		aname, err := p.name()
		if err != nil {
			return err
		}
		p.skipSpace()
		if p.pos >= len(s) || s[p.pos] != '=' {
			return errParse("attribute %s in element <%s> missing value", aname, raw)
		}
		p.pos++
		p.skipSpace()
		if p.pos >= len(s) || (s[p.pos] != '"' && s[p.pos] != '\'') {
			return errParse("unquoted or missing attribute value in element <%s>", raw)
		}
		q := s[p.pos]
		p.pos++
		end := strings.IndexByte(s[p.pos:], q)
		if end < 0 {
			return errParse("unexpected EOF in attribute value")
		}
		rawVal := s[p.pos : p.pos+end]
		p.pos += end + 1
		if strings.IndexByte(rawVal, '<') >= 0 {
			return errParse("unescaped < inside quoted string")
		}
		val, err := decodeText(rawVal, false)
		if err != nil {
			return err
		}
		if aname == "xmlns" {
			p.pushNS("", val)
			continue
		}
		apfx, alocal, err := splitName(aname)
		if err != nil {
			return err
		}
		if apfx == "xmlns" {
			p.pushNS(alocal, val)
			continue
		}
		p.scratch = append(p.scratch, rawAttr{prefix: apfx, local: alocal, value: val})
	}

	pfx, local, err := splitName(raw)
	if err != nil {
		return err
	}
	el := p.newElement()
	el.Name = xml.Name{Space: p.resolve(pfx, false), Local: local}
	if n := len(p.scratch); n > 0 {
		attrs := p.newAttrs(n)
		for i, ra := range p.scratch {
			attrs[i] = xml.Attr{
				Name:  xml.Name{Space: p.resolve(ra.prefix, true), Local: ra.local},
				Value: ra.value,
			}
		}
		el.Attrs = attrs
	}
	if n := len(p.frames); n > 0 {
		parent := p.frames[n-1].el
		parent.Children = append(parent.Children, el)
	} else {
		if p.root != nil {
			return errParse("multiple root elements")
		}
		p.root = el
	}
	if selfClose {
		p.popNS(nsMark)
	} else {
		p.frames = append(p.frames, frame{el: el, rawName: raw, nsMark: nsMark})
	}
	return nil
}

func (p *parser) endTag() error {
	p.pos += 2 // "</"
	raw, err := p.name()
	if err != nil {
		return err
	}
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != '>' {
		return errParse("invalid characters between </%s and >", raw)
	}
	p.pos++
	n := len(p.frames)
	if n == 0 {
		return errParse("unbalanced end element %s", raw)
	}
	f := p.frames[n-1]
	if f.rawName != raw {
		return errParse("element <%s> closed by </%s>", f.rawName, raw)
	}
	p.frames = p.frames[:n-1]
	// Drop insignificant whitespace in container elements.
	if len(f.el.Children) > 0 && strings.TrimSpace(f.el.Text) == "" {
		f.el.Text = ""
	}
	p.popNS(f.nsMark)
	return nil
}

func (p *parser) bang() error {
	rest := p.s[p.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		return p.comment()
	case strings.HasPrefix(rest, "<![CDATA["):
		return p.cdata()
	default:
		return p.directive()
	}
}

func (p *parser) comment() error {
	s := p.s
	p.pos += 4 // "<!--"
	idx := strings.Index(s[p.pos:], "--")
	if idx < 0 {
		return errParse("unexpected EOF in comment")
	}
	if err := validateChars(s[p.pos : p.pos+idx]); err != nil {
		return err
	}
	p.pos += idx
	if p.pos+2 >= len(s) {
		return errParse("unexpected EOF in comment")
	}
	if s[p.pos+2] != '>' {
		return errParse(`invalid sequence "--" not allowed in comments`)
	}
	p.pos += 3
	return nil
}

func (p *parser) cdata() error {
	s := p.s
	p.pos += 9 // "<![CDATA["
	idx := strings.Index(s[p.pos:], "]]>")
	if idx < 0 {
		return errParse("unexpected EOF in CDATA section")
	}
	span := s[p.pos : p.pos+idx]
	p.pos += idx + 3
	if err := validateChars(span); err != nil {
		return err
	}
	if strings.IndexByte(span, '\r') >= 0 {
		span = normalizeCR(span)
	}
	p.appendText(span)
	return nil
}

func (p *parser) directive() error {
	s := p.s
	p.pos += 2 // "<!"
	start := p.pos
	depth := 0
	var quote byte
	for p.pos < len(s) {
		c := s[p.pos]
		if quote != 0 {
			if c == quote {
				quote = 0
			}
		} else {
			switch c {
			case '\'', '"':
				quote = c
			case '<':
				depth++
			case '>':
				if depth == 0 {
					err := validateChars(s[start:p.pos])
					p.pos++
					return err
				}
				depth--
			}
		}
		p.pos++
	}
	return errParse("unexpected EOF in directive")
}

func (p *parser) procInst() error {
	s := p.s
	p.pos += 2 // "<?"
	idx := strings.Index(s[p.pos:], "?>")
	if idx < 0 {
		return errParse("unexpected EOF in processing instruction")
	}
	span := s[p.pos : p.pos+idx]
	p.pos += idx + 2
	if err := validateChars(span); err != nil {
		return err
	}
	// The reference decoder rejects declared non-UTF-8 encodings (it
	// has no CharsetReader configured); match it.
	if strings.HasPrefix(span, "xml") {
		if enc := procInstAttr(span, "encoding"); enc != "" && !strings.EqualFold(enc, "utf-8") {
			return errParse("encoding %q declared but only UTF-8 is supported", enc)
		}
	}
	return nil
}

// procInstAttr extracts a pseudo-attribute value from an <?xml ...?>
// declaration body.
func procInstAttr(body, attr string) string {
	idx := strings.Index(body, attr+"=")
	if idx < 0 {
		return ""
	}
	v := body[idx+len(attr)+1:]
	if len(v) < 2 || (v[0] != '"' && v[0] != '\'') {
		return ""
	}
	end := strings.IndexByte(v[1:], v[0])
	if end < 0 {
		return ""
	}
	return v[1 : 1+end]
}

// Byte classes for the text scanner.
const (
	tcPlain   = iota // copied verbatim
	tcRewrite        // '&' or '\r': span must be rewritten
	tcBracket        // ']': possible unescaped "]]>"
	tcBad            // control characters illegal in XML
	tcHigh           // >= 0x80: multi-byte rune, validate UTF-8
)

var (
	textClass     [256]byte
	nameByte      [256]bool
	nameStartByte [256]bool
)

func init() {
	for i := 0; i < 256; i++ {
		switch {
		case i >= 0x80:
			textClass[i] = tcHigh
		case i == '&' || i == '\r':
			textClass[i] = tcRewrite
		case i == ']':
			textClass[i] = tcBracket
		case i < 0x20 && i != '\t' && i != '\n':
			textClass[i] = tcBad
		default:
			textClass[i] = tcPlain
		}
		c := byte(i)
		isLetter := c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z'
		nameStartByte[i] = isLetter || c == '_' || c == ':'
		nameByte[i] = nameStartByte[i] || c >= '0' && c <= '9' || c == '-' || c == '.'
	}
}

// decodeText validates a character-data or attribute-value span and
// resolves entity references and CR/CRLF normalization. Spans needing
// neither are returned as-is — a zero-copy alias of the input string.
func decodeText(span string, cdataEndIllegal bool) (string, error) {
	needs := false
	for i := 0; i < len(span); i++ {
		switch textClass[span[i]] {
		case tcPlain:
		case tcRewrite:
			needs = true
		case tcBracket:
			if cdataEndIllegal && strings.HasPrefix(span[i:], "]]>") {
				return "", errParse("unescaped ]]> not in CDATA section")
			}
		case tcBad:
			return "", errParse("illegal character code %U", rune(span[i]))
		case tcHigh:
			r, size := utf8.DecodeRuneInString(span[i:])
			if r == utf8.RuneError && size == 1 {
				return "", errParse("invalid UTF-8")
			}
			if r == 0xFFFE || r == 0xFFFF {
				return "", errParse("illegal character code %U", r)
			}
			i += size - 1
		}
	}
	if !needs {
		return span, nil
	}
	return rewriteText(span)
}

// validateChars checks comment/PI/directive/CDATA content, where
// entity references are not recognized.
func validateChars(span string) error {
	for i := 0; i < len(span); i++ {
		c := span[i]
		if c >= 0x80 {
			r, size := utf8.DecodeRuneInString(span[i:])
			if r == utf8.RuneError && size == 1 {
				return errParse("invalid UTF-8")
			}
			if r == 0xFFFE || r == 0xFFFF {
				return errParse("illegal character code %U", r)
			}
			i += size - 1
		} else if c < 0x20 && c != '\t' && c != '\n' && c != '\r' {
			return errParse("illegal character code %U", rune(c))
		}
	}
	return nil
}

// rewriteText is the slow path: entity references decoded, CR and CRLF
// normalized to LF (XML 1.0 §2.11).
func rewriteText(span string) (string, error) {
	var b strings.Builder
	b.Grow(len(span))
	for i := 0; i < len(span); i++ {
		switch c := span[i]; c {
		case '\r':
			b.WriteByte('\n')
			if i+1 < len(span) && span[i+1] == '\n' {
				i++
			}
		case '&':
			r, width, err := decodeEntity(span[i:])
			if err != nil {
				return "", err
			}
			b.WriteRune(r)
			i += width - 1
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), nil
}

func normalizeCR(span string) string {
	var b strings.Builder
	b.Grow(len(span))
	for i := 0; i < len(span); i++ {
		if c := span[i]; c == '\r' {
			b.WriteByte('\n')
			if i+1 < len(span) && span[i+1] == '\n' {
				i++
			}
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// decodeEntity resolves one entity reference at the start of s
// (s[0] == '&'), returning the rune and the reference's byte width.
// Only the five predefined entities and character references are
// recognized; DTD-defined entities are not expanded, matching the
// reference decoder.
func decodeEntity(s string) (rune, int, error) {
	limit := len(s)
	if limit > 34 {
		limit = 34
	}
	end := strings.IndexByte(s[:limit], ';')
	if end < 0 {
		return 0, 0, errParse("invalid character entity (no semicolon)")
	}
	name := s[1:end]
	width := end + 1
	switch name {
	case "lt":
		return '<', width, nil
	case "gt":
		return '>', width, nil
	case "amp":
		return '&', width, nil
	case "apos":
		return '\'', width, nil
	case "quot":
		return '"', width, nil
	}
	if !strings.HasPrefix(name, "#") {
		return 0, 0, errParse("invalid character entity &%s;", name)
	}
	num := name[1:]
	base := 10
	if strings.HasPrefix(num, "x") {
		base = 16
		num = num[1:]
	}
	n, err := strconv.ParseUint(num, base, 32)
	if err != nil {
		return 0, 0, errParse("invalid character entity &%s;", name)
	}
	r := rune(n)
	if !validXMLChar(r) {
		return 0, 0, errParse("illegal character code %U", r)
	}
	return r, width, nil
}

// validXMLChar reports whether r is in the XML 1.0 Char production.
func validXMLChar(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

package xmlutil

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse decodes one XML document into an element tree. Namespace
// prefixes are resolved (Element names and attribute names carry
// namespace URIs); xmlns declaration attributes are dropped since they
// are reconstructed on serialization. Whitespace-only character data in
// elements that have child elements is discarded.
func Parse(data []byte) (*Element, error) {
	return ParseReader(bytes.NewReader(data))
}

// ParseReader decodes one XML document from r. See Parse.
func ParseReader(r io.Reader) (*Element, error) {
	dec := xml.NewDecoder(r)
	var root *Element
	var stack []*Element
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlutil: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := &Element{Name: t.Name}
			for _, a := range t.Attr {
				if isNamespaceDecl(a.Name) {
					continue
				}
				el.Attrs = append(el.Attrs, a)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmlutil: parse: multiple root elements")
				}
				root = el
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlutil: parse: unbalanced end element %s", t.Name.Local)
			}
			done := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			// Drop insignificant whitespace in container elements.
			if len(done.Children) > 0 && strings.TrimSpace(done.Text) == "" {
				done.Text = ""
			}
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += string(t)
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Ignored: comments and processing instructions carry no
			// message semantics in any of the WS-* specifications.
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlutil: parse: unexpected EOF inside %s", stack[len(stack)-1].Name.Local)
	}
	if root == nil {
		return nil, fmt.Errorf("xmlutil: parse: empty document")
	}
	return root, nil
}

// MustParse is Parse for static document literals in tests and
// examples; it panics on malformed input.
func MustParse(data string) *Element {
	e, err := Parse([]byte(data))
	if err != nil {
		panic(err)
	}
	return e
}

func isNamespaceDecl(n xml.Name) bool {
	return n.Space == "xmlns" || (n.Space == "" && n.Local == "xmlns")
}

package xmlutil

import "testing"

// BenchmarkParse measures the inbound hot path: every request,
// response, notification, and database read funnels one document
// through Parse. The soap-like shape mirrors the envelopes the
// Figure 2-4 workloads put on the wire.
func BenchmarkParse(b *testing.B) {
	data := soapLikeDoc().Marshal()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseEscapeHeavy exercises the entity-decoding slow branch.
func BenchmarkParseEscapeHeavy(b *testing.B) {
	doc := soapLikeDoc()
	doc.Children[1].Children[0].Add(
		NewText("urn:counter", "note", `a < b && c > "d" — O'Reilly & sons, repeatedly & <again>`))
	data := doc.Marshal()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

package xmlutil

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// parseCorpus is the differential corpus: every document shape the two
// stacks put on the wire, plus the syntax corners the hand-rolled
// parser must agree with the encoding/xml reference implementation on.
// Inputs where both parsers must fail carry wantErr.
var parseCorpus = []struct {
	name    string
	doc     string
	wantErr bool
}{
	{name: "simple", doc: `<a/>`},
	{name: "text", doc: `<a>hello</a>`},
	{name: "nested", doc: `<a><b><c>x</c></b></a>`},
	{name: "attrs", doc: `<a b="1" c='2'/>`},
	{name: "soap-like", doc: string(MustParseRef(`<x/>`).Marshal())}, // replaced below
	{name: "default-ns", doc: `<a xmlns="urn:u"><b c="1"/></a>`},
	{name: "prefixed", doc: `<p:a xmlns:p="urn:u"><p:b/><q/></p:a>`},
	{name: "ns-redecl", doc: `<a xmlns:p="u"><b xmlns:p="v"><p:c/></b><p:d/></a>`},
	{name: "ns-reset", doc: `<a xmlns="u"><b xmlns=""/></a>`},
	{name: "decl-after-use", doc: `<p:a p:x="1" xmlns:p="urn:u"/>`},
	{name: "undeclared-prefix", doc: `<foo:bar>text</foo:bar>`},
	{name: "undeclared-attr-prefix", doc: `<a foo:b="1"/>`},
	{name: "xml-prefix", doc: `<a xml:lang="en"/>`},
	{name: "dup-attr", doc: `<a b="1" b="2"/>`},
	{name: "no-space-attrs", doc: `<a b="1"c="2"/>`},
	{name: "space-eq", doc: `<a b = "1" />`},
	{name: "entities-text", doc: `<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>`},
	{name: "entities-attr", doc: `<a b="&amp;&#65;&lt;&#x42;"/>`},
	{name: "numeric-entities", doc: `<a>&#65;&#x42;&#x1F600;</a>`},
	{name: "cdata", doc: `<a><![CDATA[x < y & z]]></a>`},
	{name: "cdata-mixed", doc: `<a>x<![CDATA[<b>]]>y</a>`},
	{name: "comment-split-text", doc: `<a>x<!-- c -->y</a>`},
	{name: "comment-only-root", doc: `<!-- pre --><a/><!-- post -->`},
	{name: "pi", doc: `<?xml version="1.0"?><a/>`},
	{name: "pi-encoding-utf8", doc: `<?xml version="1.0" encoding="UTF-8"?><a/>`},
	{name: "pi-inside", doc: `<a><?php echo?></a>`},
	{name: "doctype", doc: `<!DOCTYPE a [<!ELEMENT b (c)>]><a/>`},
	{name: "leading-text", doc: `junk<a/>`},
	{name: "trailing-text", doc: `<a/>junk`},
	{name: "leading-bom", doc: "\uFEFF<a/>"},
	{name: "crlf-text", doc: "<a>x\r\ny\rz</a>"},
	{name: "crlf-attr", doc: "<a b=\"x\r\ny\" c=\"p\rq\"/>"},
	{name: "ws-only-container", doc: "<a>\n  <b/>\n  <c/>\n</a>"},
	{name: "ws-only-leaf", doc: "<a>   </a>"},
	{name: "mixed-content", doc: `<a>x<b/>y</a>`},
	{name: "end-tag-space", doc: `<a ></a >`},
	{name: "name-punct", doc: `<a.b-c_d e.f-g_h="1"/>`},
	{name: "unicode-name", doc: `<héllo wörld="1">déjà</héllo>`},
	{name: "unicode-text", doc: `<a>漢字 ⊕ emoji 🎉</a>`},
	{name: "deep", doc: strings.Repeat("<d>", 40) + "x" + strings.Repeat("</d>", 40)},

	{name: "empty", doc: ``, wantErr: true},
	{name: "ws-only-doc", doc: `   `, wantErr: true},
	{name: "only-comment", doc: `<!-- x -->`, wantErr: true},
	{name: "second-root", doc: `<a/><b/>`, wantErr: true},
	{name: "unclosed", doc: `<a><b></a>`, wantErr: true},
	{name: "stray-end", doc: `</a>`, wantErr: true},
	{name: "tag-eof", doc: `<a`, wantErr: true},
	{name: "attr-eof", doc: `<a b="1`, wantErr: true},
	{name: "bang-eof", doc: `<a><!`, wantErr: true},
	{name: "comment-eof", doc: `<a><!-- x`, wantErr: true},
	{name: "cdata-eof", doc: `<a><![CDATA[x</a>`, wantErr: true},
	{name: "comment-dashes", doc: `<a><!-- -- --></a>`, wantErr: true},
	{name: "bad-entity", doc: `<a>&nope;</a>`, wantErr: true},
	{name: "bare-amp", doc: `<a>a & b</a>`, wantErr: true},
	{name: "entity-nul", doc: `<a>&#0;</a>`, wantErr: true},
	{name: "entity-huge", doc: `<a>&#x110000;</a>`, wantErr: true},
	{name: "entity-upper-x", doc: `<a>&#X41;</a>`, wantErr: true},
	{name: "mismatched", doc: `<a></b>`, wantErr: true},
	{name: "double-colon", doc: `<a:b:c/>`, wantErr: true},
	{name: "digit-name", doc: `<1a/>`, wantErr: true},
	{name: "lt-in-attr", doc: `<a b="<"/>`, wantErr: true},
	{name: "unquoted-attr", doc: `<a b=1/>`, wantErr: true},
	{name: "valueless-attr", doc: `<a b/>`, wantErr: true},
	{name: "cdata-end-in-text", doc: `<a>x ]]> y</a>`, wantErr: true},
	{name: "invalid-utf8", doc: "<a>\xff</a>", wantErr: true},
	{name: "nul-in-text", doc: "<a>\x00</a>", wantErr: true},
	{name: "end-tag-attr", doc: `<a></a b="1">`, wantErr: true},
	{name: "declared-latin1", doc: `<?xml version="1.0" encoding="ISO-8859-1"?><a/>`, wantErr: true},
}

// MustParseRef is MustParse via the reference decoder, used to build
// corpus entries from the serializer.
func MustParseRef(doc string) *Element {
	e, err := ParseReader(strings.NewReader(doc))
	if err != nil {
		panic(err)
	}
	return e
}

func init() {
	// Real wire shapes: the serializer's own output for the benchmark
	// documents, escape-heavy content included.
	esc := soapLikeDoc()
	esc.Children[1].Children[0].Add(
		NewText("urn:counter", "note", `a < b && c > "d" — O'Reilly & sons <again>`))
	for i, c := range parseCorpus {
		if c.name == "soap-like" {
			parseCorpus[i].doc = string(esc.Marshal())
		}
	}
}

// equalStrict is exact tree equality: names, attribute order and
// values, untrimmed text, child order. (Equal is too lenient for the
// differential test — it trims text.)
func equalStrict(a, b *Element) bool {
	if a.Name != b.Name || a.Text != b.Text ||
		len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !equalStrict(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// TestParseDifferential pins the hand-rolled parser to the
// encoding/xml reference implementation across the corpus: identical
// accept/reject decisions and identical trees on accept.
func TestParseDifferential(t *testing.T) {
	for _, tc := range parseCorpus {
		t.Run(tc.name, func(t *testing.T) {
			fast, fastErr := Parse([]byte(tc.doc))
			ref, refErr := ParseReader(bytes.NewReader([]byte(tc.doc)))
			if (fastErr != nil) != (refErr != nil) {
				t.Fatalf("accept/reject disagreement:\n  fast: %v\n  ref:  %v", fastErr, refErr)
			}
			if tc.wantErr && fastErr == nil {
				t.Fatalf("both parsers accepted, want error")
			}
			if !tc.wantErr && fastErr != nil {
				t.Fatalf("both parsers rejected, want success: %v", fastErr)
			}
			if fastErr == nil && !equalStrict(fast, ref) {
				t.Fatalf("tree mismatch:\n  fast: %s\n  ref:  %s", fast, ref)
			}
		})
	}
}

// TestParseRoundTripGenerated fuzz-adjacent coverage: generated trees
// survive Marshal → Parse with both parsers agreeing.
func TestParseRoundTripGenerated(t *testing.T) {
	docs := []*Element{
		soapLikeDoc(),
		buildWide(200),
		buildDeep(60),
	}
	for i, doc := range docs {
		data := doc.Marshal()
		fast, err := Parse(data)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		ref, err := ParseReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("doc %d ref: %v", i, err)
		}
		if !equalStrict(fast, ref) {
			t.Fatalf("doc %d: fast/ref tree mismatch", i)
		}
		if !Equal(doc, fast) {
			t.Fatalf("doc %d: round trip mismatch", i)
		}
	}
}

// TestParseInputAliasing: the returned tree must not alias the
// caller's byte slice — the container recycles request buffers.
func TestParseInputAliasing(t *testing.T) {
	data := []byte(`<a b="value">text-content</a>`)
	el, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 'X'
	}
	if el.Text != "text-content" || el.AttrValue("", "b") != "value" {
		t.Fatalf("tree aliases caller buffer: %s", el)
	}
}

// TestParseConcurrent exercises the pooled parser state under
// concurrent use (run with -race).
func TestParseConcurrent(t *testing.T) {
	data := soapLikeDoc().Marshal()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				el, err := Parse(data)
				if err != nil {
					done <- err
					return
				}
				if el.Name.Local != "Envelope" {
					done <- fmt.Errorf("bad root %v", el.Name)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestParseErrorsMentionPackage keeps error text grep-able.
func TestParseErrorsMentionPackage(t *testing.T) {
	_, err := Parse([]byte(`<a>`))
	if err == nil || !strings.Contains(err.Error(), "xmlutil: parse") {
		t.Fatalf("err = %v", err)
	}
	_, err = Parse(nil)
	if err == nil || !strings.Contains(err.Error(), "empty document") {
		t.Fatalf("err = %v", err)
	}
}

package xmlutil

import "testing"

// soapLikeDoc builds a document shaped like the envelopes on the wire:
// a handful of namespaces, addressing-style headers, a modest signed
// body — the Marshal workload every operation in Figures 2-4 and 6
// pays at least twice (request and response).
func soapLikeDoc() *Element {
	const (
		nsSoap = "http://schemas.xmlsoap.org/soap/envelope/"
		nsWSA  = "http://schemas.xmlsoap.org/ws/2004/08/addressing"
		nsApp  = "urn:counter"
	)
	header := New(nsSoap, "Header").Add(
		NewText(nsWSA, "Action", nsApp+"/Set"),
		NewText(nsWSA, "To", "http://127.0.0.1:8080/counter"),
		NewText(nsWSA, "MessageID", "uuid:0f8d7a62-aaaa-bbbb-cccc-0123456789ab"),
		NewText(nsApp, "CounterID", "f81d4fae-7dec-11d0-a765-00a0c91e6bf6").
			SetAttr(nsSoap, "mustUnderstand", "1"),
	)
	body := New(nsSoap, "Body").Add(
		New(nsApp, "SetResourceProperties").Add(
			New(nsApp, "Update").Add(
				NewText(nsApp, "cv", "123456").SetAttr("", "kind", "counter value"),
			),
		),
	)
	return New(nsSoap, "Envelope").Add(header, body)
}

func BenchmarkMarshal(b *testing.B) {
	doc := soapLikeDoc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := doc.Marshal(); len(out) == 0 {
			b.Fatal("empty marshal")
		}
	}
}

func BenchmarkCanonical(b *testing.B) {
	doc := soapLikeDoc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := doc.Canonical(); len(out) == 0 {
			b.Fatal("empty canonical form")
		}
	}
}

func BenchmarkMarshalEscapeHeavy(b *testing.B) {
	// Text with embedded escapes exercises the span fast path's slow
	// branch; text without them should be a straight copy.
	doc := soapLikeDoc()
	doc.Children[1].Children[0].Add(
		NewText("urn:counter", "note", `a < b && c > "d" — O'Reilly & sons, repeatedly & <again>`))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc.Marshal()
	}
}

package xmlutil

import (
	"fmt"
	"strings"
	"testing"
)

// buildWide returns a document with n sibling children — the shape of
// a large directory listing or a query result.
func buildWide(n int) *Element {
	root := New("urn:big", "Listing")
	for i := 0; i < n; i++ {
		root.Add(NewText("urn:big", "File", fmt.Sprintf("output-%06d.dat", i)).
			SetAttr("", "size", fmt.Sprint(i*1024)))
	}
	return root
}

// buildDeep returns a document nested n levels — the pathological
// shape for recursive processing.
func buildDeep(n int) *Element {
	root := New("urn:deep", "L0")
	cur := root
	for i := 1; i < n; i++ {
		next := New("urn:deep", fmt.Sprintf("L%d", i))
		cur.Add(next)
		cur = next
	}
	cur.Text = "bottom"
	return root
}

func TestWideDocumentRoundTrip(t *testing.T) {
	orig := buildWide(2000)
	parsed, err := Parse(orig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Children) != 2000 {
		t.Fatalf("children = %d", len(parsed.Children))
	}
	if !Equal(orig, parsed) {
		t.Fatal("wide document round trip mismatch")
	}
}

func TestDeepDocumentRoundTrip(t *testing.T) {
	orig := buildDeep(500)
	parsed, err := Parse(orig.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(orig, parsed) {
		t.Fatal("deep document round trip mismatch")
	}
	// Walk reaches the bottom.
	depth := 0
	parsed.Walk(func(e *Element) bool { depth++; return true })
	if depth != 500 {
		t.Fatalf("walk visited %d, want 500", depth)
	}
}

func TestManyNamespacesStablePrefixes(t *testing.T) {
	root := New("urn:ns0", "root")
	for i := 1; i <= 60; i++ {
		root.Add(NewText(fmt.Sprintf("urn:ns%d", i), "item", fmt.Sprint(i)))
	}
	out := string(root.Marshal())
	// All declarations on the root, none duplicated.
	if strings.Count(out, "xmlns:") != 61 {
		t.Fatalf("xmlns declarations = %d, want 61", strings.Count(out, "xmlns:"))
	}
	parsed, err := Parse([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(root, parsed) {
		t.Fatal("many-namespace round trip mismatch")
	}
}

func BenchmarkParseWide(b *testing.B) {
	data := buildWide(500).Marshal()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalWide(b *testing.B) {
	doc := buildWide(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = doc.Marshal()
	}
}

func BenchmarkCloneWide(b *testing.B) {
	doc := buildWide(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = doc.Clone()
	}
}

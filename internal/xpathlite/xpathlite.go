// Package xpathlite evaluates a practical subset of XPath 1.0 over
// xmlutil element trees.
//
// Four independent consumers in the reproduction need path queries:
// WSRF's QueryResourceProperties operation (paper §3.1 — "rich queries
// over the state of multiple resources using query languages such as
// XPath"), WS-Notification message-content filters, WS-Eventing filter
// predicates (paper §2.2 — "examine message content (e.g., with an
// XPath query)"), and the Xindice-style XML database. The supported
// subset covers what those layers express:
//
//	/a/b          absolute child paths
//	a/b           relative child paths
//	//a, a//b     descendant-or-self axis
//	*             name wildcard
//	.             self
//	@attr         attribute selection (terminal step)
//	text()        text selection (terminal step)
//	[3]           positional predicate (1-based)
//	[b]           child-existence predicate
//	[b='v']       child-text comparison (=, !=, <, <=, >, >=; numeric
//	              comparison when both sides parse as numbers)
//	[@a='v']      attribute comparison / existence
//	[.='v']       self-text comparison
//
// Namespace prefixes are not resolved; steps match on local names, the
// convention used by all in-repo documents and filters.
package xpathlite

import (
	"fmt"
	"strconv"
	"strings"

	"altstacks/internal/xmlutil"
)

// Kind discriminates the node kinds a query can select.
type Kind int

const (
	// KindElement nodes carry El.
	KindElement Kind = iota
	// KindAttr nodes carry the attribute's string Value (El is the owner).
	KindAttr
	// KindText nodes carry an element's trimmed text as Value.
	KindText
)

// Node is one result of evaluating a path expression.
type Node struct {
	Kind  Kind
	El    *xmlutil.Element
	Value string // attribute value or text content for KindAttr/KindText
}

// Path is a compiled expression, reusable across documents.
type Path struct {
	expr     string
	absolute bool
	steps    []step
}

type step struct {
	descendant bool // step was preceded by //
	name       string
	self       bool // "."
	attr       string
	textFn     bool
	preds      []predicate
}

type predicate struct {
	pos   int // positional predicate when > 0
	left  leftOperand
	op    string // "", "=", "!=", "<", "<=", ">", ">="
	value string
}

type leftOperand struct {
	self  bool   // "."
	attr  string // @attr
	child string // child element local name
}

// Compile parses an expression into a reusable Path.
func Compile(expr string) (*Path, error) {
	p := &Path{expr: expr}
	s := strings.TrimSpace(expr)
	if s == "" {
		return nil, fmt.Errorf("xpathlite: empty expression")
	}
	if strings.HasPrefix(s, "//") {
		p.absolute = true
		s = s[2:]
		if s == "" {
			return nil, fmt.Errorf("xpathlite: %q: dangling //", expr)
		}
		first, rest, err := parseStep(s, true)
		if err != nil {
			return nil, fmt.Errorf("xpathlite: %q: %w", expr, err)
		}
		p.steps = append(p.steps, first)
		s = rest
	} else if strings.HasPrefix(s, "/") {
		p.absolute = true
		s = s[1:]
		if s == "" {
			return nil, fmt.Errorf("xpathlite: %q: dangling /", expr)
		}
	}
	for s != "" {
		descendant := false
		if strings.HasPrefix(s, "//") {
			descendant = true
			s = s[2:]
		} else if strings.HasPrefix(s, "/") {
			s = s[1:]
		}
		if s == "" {
			return nil, fmt.Errorf("xpathlite: %q: trailing slash", expr)
		}
		st, rest, err := parseStep(s, descendant)
		if err != nil {
			return nil, fmt.Errorf("xpathlite: %q: %w", expr, err)
		}
		p.steps = append(p.steps, st)
		s = rest
	}
	if len(p.steps) == 0 {
		return nil, fmt.Errorf("xpathlite: %q: no steps", expr)
	}
	// @attr and text() are terminal.
	for i, st := range p.steps {
		if (st.attr != "" || st.textFn) && i != len(p.steps)-1 {
			return nil, fmt.Errorf("xpathlite: %q: %s must be the final step", expr, renderStep(st))
		}
	}
	return p, nil
}

func renderStep(st step) string {
	if st.attr != "" {
		return "@" + st.attr
	}
	if st.textFn {
		return "text()"
	}
	return st.name
}

// parseStep consumes one step (name + predicates) from the front of s.
func parseStep(s string, descendant bool) (step, string, error) {
	st := step{descendant: descendant}
	i := 0
	for i < len(s) && s[i] != '/' && s[i] != '[' {
		i++
	}
	head := s[:i]
	rest := s[i:]
	switch {
	case head == "":
		return st, "", fmt.Errorf("empty step")
	case head == ".":
		st.self = true
	case head == "text()":
		st.textFn = true
	case strings.HasPrefix(head, "@"):
		if len(head) == 1 {
			return st, "", fmt.Errorf("empty attribute name")
		}
		st.attr = stripPrefix(head[1:])
	default:
		st.name = stripPrefix(head)
	}
	for strings.HasPrefix(rest, "[") {
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return st, "", fmt.Errorf("unterminated predicate in %q", rest)
		}
		pred, err := parsePredicate(rest[1:end])
		if err != nil {
			return st, "", err
		}
		st.preds = append(st.preds, pred)
		rest = rest[end+1:]
	}
	return st, rest, nil
}

// stripPrefix removes any namespace prefix; matching is by local name.
func stripPrefix(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func parsePredicate(body string) (predicate, error) {
	body = strings.TrimSpace(body)
	if body == "" {
		return predicate{}, fmt.Errorf("empty predicate")
	}
	if n, err := strconv.Atoi(body); err == nil {
		if n < 1 {
			return predicate{}, fmt.Errorf("position %d out of range", n)
		}
		return predicate{pos: n}, nil
	}
	for _, op := range []string{"!=", "<=", ">=", "=", "<", ">"} {
		if i := strings.Index(body, op); i >= 0 {
			left, err := parseLeft(strings.TrimSpace(body[:i]))
			if err != nil {
				return predicate{}, err
			}
			val, err := parseLiteral(strings.TrimSpace(body[i+len(op):]))
			if err != nil {
				return predicate{}, err
			}
			return predicate{left: left, op: op, value: val}, nil
		}
	}
	left, err := parseLeft(body)
	if err != nil {
		return predicate{}, err
	}
	return predicate{left: left}, nil
}

func parseLeft(s string) (leftOperand, error) {
	switch {
	case s == "":
		return leftOperand{}, fmt.Errorf("empty predicate operand")
	case s == ".":
		return leftOperand{self: true}, nil
	case strings.HasPrefix(s, "@"):
		if len(s) == 1 {
			return leftOperand{}, fmt.Errorf("empty attribute in predicate")
		}
		return leftOperand{attr: stripPrefix(s[1:])}, nil
	default:
		if strings.ContainsAny(s, "/[]'\"") {
			return leftOperand{}, fmt.Errorf("unsupported predicate operand %q", s)
		}
		return leftOperand{child: stripPrefix(s)}, nil
	}
}

func parseLiteral(s string) (string, error) {
	if len(s) >= 2 && (s[0] == '\'' && s[len(s)-1] == '\'' || s[0] == '"' && s[len(s)-1] == '"') {
		return s[1 : len(s)-1], nil
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return s, nil
	}
	return "", fmt.Errorf("bad literal %q (quote strings)", s)
}

// Select evaluates the compiled path against ctx. For absolute paths
// the first step matches ctx itself (ctx is treated as the document
// root); relative paths start at ctx's children.
func (p *Path) Select(ctx *xmlutil.Element) []Node {
	if ctx == nil {
		return nil
	}
	// current context set: element nodes only until a terminal step.
	cur := []*xmlutil.Element{ctx}
	for i, st := range p.steps {
		terminal := i == len(p.steps)-1
		if st.attr != "" || st.textFn {
			// Terminal value steps.
			var out []Node
			for _, el := range cur {
				targets := []*xmlutil.Element{el}
				if st.descendant {
					targets = descendants(el)
				}
				for _, t := range targets {
					if st.attr != "" {
						// @attr selects from the context element's children? No:
						// a step "@attr" applies to the current context nodes.
						if v, ok := anyAttr(t, st.attr); ok {
							out = append(out, Node{Kind: KindAttr, El: t, Value: v})
						}
					} else {
						out = append(out, Node{Kind: KindText, El: t, Value: t.TrimText()})
					}
				}
			}
			return out
		}
		var next []*xmlutil.Element
		rootStep := p.absolute && i == 0
		for _, el := range cur {
			var cands []*xmlutil.Element
			switch {
			case st.self:
				cands = []*xmlutil.Element{el}
			case rootStep && !st.descendant:
				// Absolute first step names the document element itself.
				cands = []*xmlutil.Element{el}
			case st.descendant:
				cands = descendants(el)
			default:
				cands = el.Children
			}
			var matched []*xmlutil.Element
			for _, c := range cands {
				if st.self || st.name == "*" || c.Name.Local == st.name {
					matched = append(matched, c)
				}
			}
			matched = applyPredicates(matched, st.preds)
			next = append(next, matched...)
		}
		cur = dedup(next)
		if len(cur) == 0 {
			return nil
		}
		if terminal {
			out := make([]Node, len(cur))
			for j, el := range cur {
				out[j] = Node{Kind: KindElement, El: el}
			}
			return out
		}
	}
	return nil
}

// descendants returns el's descendants (excluding el) in document order.
func descendants(el *xmlutil.Element) []*xmlutil.Element {
	var out []*xmlutil.Element
	for _, c := range el.Children {
		out = append(out, c)
		out = append(out, descendants(c)...)
	}
	return out
}

func anyAttr(el *xmlutil.Element, local string) (string, bool) {
	for _, a := range el.Attrs {
		if a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

func applyPredicates(nodes []*xmlutil.Element, preds []predicate) []*xmlutil.Element {
	for _, p := range preds {
		if p.pos > 0 {
			if p.pos > len(nodes) {
				return nil
			}
			nodes = []*xmlutil.Element{nodes[p.pos-1]}
			continue
		}
		var keep []*xmlutil.Element
		for _, n := range nodes {
			if evalPredicate(n, p) {
				keep = append(keep, n)
			}
		}
		nodes = keep
	}
	return nodes
}

func evalPredicate(el *xmlutil.Element, p predicate) bool {
	var vals []string
	switch {
	case p.left.self:
		vals = []string{el.TrimText()}
	case p.left.attr != "":
		v, ok := anyAttr(el, p.left.attr)
		if !ok {
			return false
		}
		vals = []string{v}
	default:
		for _, c := range el.Children {
			if c.Name.Local == p.left.child {
				vals = append(vals, c.TrimText())
			}
		}
		if len(vals) == 0 {
			return false
		}
	}
	if p.op == "" {
		return true // pure existence test
	}
	for _, v := range vals {
		if compare(v, p.op, p.value) {
			return true
		}
	}
	return false
}

// compare applies the operator; numeric comparison when both sides
// parse as floats, otherwise lexical string comparison.
func compare(a, op, b string) bool {
	fa, ea := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, eb := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if ea == nil && eb == nil {
		switch op {
		case "=":
			return fa == fb
		case "!=":
			return fa != fb
		case "<":
			return fa < fb
		case "<=":
			return fa <= fb
		case ">":
			return fa > fb
		case ">=":
			return fa >= fb
		}
		return false
	}
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func dedup(els []*xmlutil.Element) []*xmlutil.Element {
	seen := make(map[*xmlutil.Element]bool, len(els))
	out := els[:0]
	for _, e := range els {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// String returns the original expression text.
func (p *Path) String() string { return p.expr }

// Select compiles and evaluates expr against ctx.
func Select(ctx *xmlutil.Element, expr string) ([]Node, error) {
	p, err := Compile(expr)
	if err != nil {
		return nil, err
	}
	return p.Select(ctx), nil
}

// SelectElements returns only element-kind results of evaluating expr.
func SelectElements(ctx *xmlutil.Element, expr string) ([]*xmlutil.Element, error) {
	nodes, err := Select(ctx, expr)
	if err != nil {
		return nil, err
	}
	var out []*xmlutil.Element
	for _, n := range nodes {
		if n.Kind == KindElement {
			out = append(out, n.El)
		}
	}
	return out, nil
}

// Matches reports whether expr selects at least one node in ctx — the
// boolean interpretation used by notification filter predicates.
func Matches(ctx *xmlutil.Element, expr string) (bool, error) {
	nodes, err := Select(ctx, expr)
	if err != nil {
		return false, err
	}
	return len(nodes) > 0, nil
}

package xpathlite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"altstacks/internal/xmlutil"
)

const jobsDoc = `
<jobs count="3">
  <job id="1" state="running">
    <name>render</name><priority>5</priority>
    <host>node-a</host>
  </job>
  <job id="2" state="done">
    <name>compress</name><priority>2</priority>
    <host>node-b</host>
    <exit><code>0</code></exit>
  </job>
  <job id="3" state="done">
    <name>upload</name><priority>9</priority>
    <host>node-a</host>
    <exit><code>1</code></exit>
  </job>
</jobs>`

func doc(t *testing.T) *xmlutil.Element {
	t.Helper()
	e, err := xmlutil.Parse([]byte(jobsDoc))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func elems(t *testing.T, ctx *xmlutil.Element, expr string) []*xmlutil.Element {
	t.Helper()
	out, err := SelectElements(ctx, expr)
	if err != nil {
		t.Fatalf("SelectElements(%q): %v", expr, err)
	}
	return out
}

func TestAbsoluteChildPath(t *testing.T) {
	got := elems(t, doc(t), "/jobs/job")
	if len(got) != 3 {
		t.Fatalf("/jobs/job: %d results, want 3", len(got))
	}
}

func TestRelativePath(t *testing.T) {
	got := elems(t, doc(t), "job/name")
	if len(got) != 3 || got[0].TrimText() != "render" {
		t.Fatalf("job/name: %v", got)
	}
}

func TestDescendantAxis(t *testing.T) {
	got := elems(t, doc(t), "//code")
	if len(got) != 2 {
		t.Fatalf("//code: %d results, want 2", len(got))
	}
	got = elems(t, doc(t), "/jobs//exit/code")
	if len(got) != 2 {
		t.Fatalf("/jobs//exit/code: %d results, want 2", len(got))
	}
}

func TestWildcard(t *testing.T) {
	got := elems(t, doc(t), "/jobs/job[1]/*")
	if len(got) != 3 { // name, priority, host
		t.Fatalf("wildcard children: %d, want 3", len(got))
	}
}

func TestPositionalPredicate(t *testing.T) {
	got := elems(t, doc(t), "/jobs/job[2]")
	if len(got) != 1 || got[0].AttrValue("", "id") != "2" {
		t.Fatalf("job[2]: %v", got)
	}
	if got := elems(t, doc(t), "/jobs/job[9]"); got != nil {
		t.Fatalf("job[9] should be empty, got %v", got)
	}
}

func TestAttributePredicate(t *testing.T) {
	got := elems(t, doc(t), `/jobs/job[@state='done']`)
	if len(got) != 2 {
		t.Fatalf("state=done: %d, want 2", len(got))
	}
	got = elems(t, doc(t), `/jobs/job[@state!='done']`)
	if len(got) != 1 || got[0].AttrValue("", "id") != "1" {
		t.Fatalf("state!=done: %v", got)
	}
	got = elems(t, doc(t), `/jobs/job[@missing]`)
	if len(got) != 0 {
		t.Fatalf("missing attr existence: %v", got)
	}
}

func TestChildTextPredicate(t *testing.T) {
	got := elems(t, doc(t), `/jobs/job[name='compress']`)
	if len(got) != 1 || got[0].AttrValue("", "id") != "2" {
		t.Fatalf("name=compress: %v", got)
	}
}

func TestNumericComparison(t *testing.T) {
	got := elems(t, doc(t), `/jobs/job[priority>4]`)
	if len(got) != 2 {
		t.Fatalf("priority>4: %d, want 2", len(got))
	}
	got = elems(t, doc(t), `/jobs/job[priority<=2]`)
	if len(got) != 1 || got[0].AttrValue("", "id") != "2" {
		t.Fatalf("priority<=2: %v", got)
	}
	// "10" > "9" numerically even though lexically smaller.
	e := xmlutil.MustParse(`<r><v>10</v></r>`)
	ok, err := Matches(e, `/r[v>9]`)
	if err != nil || !ok {
		t.Fatalf("numeric compare 10>9: ok=%v err=%v", ok, err)
	}
}

func TestExistencePredicate(t *testing.T) {
	got := elems(t, doc(t), `/jobs/job[exit]`)
	if len(got) != 2 {
		t.Fatalf("job[exit]: %d, want 2", len(got))
	}
}

func TestSelfPredicate(t *testing.T) {
	got := elems(t, doc(t), `/jobs/job/host[.='node-a']`)
	if len(got) != 2 {
		t.Fatalf("host[.=node-a]: %d, want 2", len(got))
	}
}

func TestAttrSelection(t *testing.T) {
	nodes, err := Select(doc(t), "/jobs/job/@id")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[0].Kind != KindAttr || nodes[2].Value != "3" {
		t.Fatalf("@id selection: %v", nodes)
	}
}

func TestTextSelection(t *testing.T) {
	nodes, err := Select(doc(t), "/jobs/job[1]/name/text()")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Kind != KindText || nodes[0].Value != "render" {
		t.Fatalf("text(): %v", nodes)
	}
}

func TestChainedPredicates(t *testing.T) {
	got := elems(t, doc(t), `/jobs/job[@state='done'][2]`)
	if len(got) != 1 || got[0].AttrValue("", "id") != "3" {
		t.Fatalf("chained: %v", got)
	}
}

func TestPrefixStripped(t *testing.T) {
	e := xmlutil.MustParse(`<a xmlns:x="urn:x"><x:b>1</x:b></a>`)
	got, err := SelectElements(e, "/a/x:b")
	if err != nil || len(got) != 1 {
		t.Fatalf("prefixed step: %v %v", got, err)
	}
}

func TestMatchesBooleanFilter(t *testing.T) {
	msg := xmlutil.MustParse(`<CounterValueChanged><value>11</value></CounterValueChanged>`)
	for expr, want := range map[string]bool{
		"/CounterValueChanged":           true,
		"/CounterValueChanged[value>10]": true,
		"/CounterValueChanged[value>50]": false,
		"/SomethingElse":                 false,
	} {
		ok, err := Matches(msg, expr)
		if err != nil {
			t.Fatalf("Matches(%q): %v", expr, err)
		}
		if ok != want {
			t.Errorf("Matches(%q) = %v, want %v", expr, ok, want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"", "/", "//", "a/", "a//", "a[", "a[]", "a[@]", "a[0]", "a[-1]",
		"a[b=unquoted]", "a/text()/b", "a/@x/b", "a[b/c='v']",
	}
	for _, expr := range bad {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
}

func TestCompileAcceptsSupportedForms(t *testing.T) {
	good := []string{
		"/a", "a", "//a", "/a/b/c", "a//b", "/a/*/c", ".",
		"/a/@id", "/a/text()", "a[1]", "a[@x='1']", `a[b="v"]`,
		"a[b!=3]", "a[b<=3][2]", "a[.='x']", "wsrp:a/wsrp:b",
	}
	for _, expr := range good {
		if _, err := Compile(expr); err != nil {
			t.Errorf("Compile(%q): %v", expr, err)
		}
	}
}

func TestSelectNilContext(t *testing.T) {
	p, err := Compile("/a")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Select(nil); got != nil {
		t.Fatalf("Select(nil) = %v, want nil", got)
	}
}

// Property: //name finds exactly the elements a manual tree walk finds.
func TestPropertyDescendantMatchesWalk(t *testing.T) {
	names := []string{"a", "b", "c"}
	var build func(r *rand.Rand, depth int) *xmlutil.Element
	build = func(r *rand.Rand, depth int) *xmlutil.Element {
		e := xmlutil.New("", names[r.Intn(len(names))])
		if depth > 0 {
			for i := 0; i < r.Intn(4); i++ {
				e.Add(build(r, depth-1))
			}
		}
		return e
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := xmlutil.New("", "root")
		for i := 0; i < 1+r.Intn(4); i++ {
			root.Add(build(r, 3))
		}
		target := names[r.Intn(len(names))]
		want := 0
		root.Walk(func(el *xmlutil.Element) bool {
			if el != root && el.Name.Local == target {
				want++
			}
			return true
		})
		got, err := SelectElements(root, "//"+target)
		if err != nil {
			return false
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: /root/x then /x relative from root agree.
func TestPropertyAbsoluteRelativeAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := xmlutil.New("", "root")
		n := r.Intn(6)
		for i := 0; i < n; i++ {
			root.Add(xmlutil.New("", "x"))
		}
		abs, err1 := SelectElements(root, "/root/x")
		rel, err2 := SelectElements(root, "x")
		if err1 != nil || err2 != nil {
			return false
		}
		return len(abs) == n && len(rel) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// OBS_BENCH flips the observability layer on for a benchmark run, so
// the instrumentation-overhead numbers in EXPERIMENTS.md are
// reproducible:
//
//	go test -run NONE -bench NotifyFanout ./              # no-op (default)
//	OBS_BENCH=1 go test -run NONE -bench NotifyFanout ./  # instrumented
package altstacks_test

import (
	"os"

	"altstacks/internal/obs"
)

func init() {
	if os.Getenv("OBS_BENCH") != "" {
		obs.Enable()
	}
}

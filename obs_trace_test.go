// Cross-process trace stitching, end to end: a counter Set travels
// client → producer container → notification delivery → consumer
// container, and the finished traces from the two containers stitch
// back into one logical trace over the WS-Addressing MessageID the
// delivery carried. This is the observability tentpole's acceptance
// path: every pipeline stage the request crossed shows up as a named
// span in a single stitched trace.
package altstacks_test

import (
	"testing"
	"time"

	"altstacks/internal/container"
	"altstacks/internal/counter"
	"altstacks/internal/obs"
	"altstacks/internal/wsa"
	"altstacks/internal/xmldb"
)

func TestCrossProcessTrace(t *testing.T) {
	obs.Enable()
	obs.ResetTraces()
	defer func() {
		obs.Disable()
		obs.ResetTraces()
	}()

	c := container.New(container.SecurityNone)
	client := container.NewClient(container.ClientConfig{})
	counter.InstallWSRF(c, xmldb.NewMemory(xmldb.CostModel{}), client)
	base, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cl := &counter.WSRFClient{C: client, Service: wsa.NewEPR(base + "/counter")}
	epr, err := cl.Create(counter.Representation(1))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := cl.SubscribeValueChanged(epr)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Cancel() //nolint:errcheck

	if err := cl.Set(epr, counter.Representation(2)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stream.Events():
	case <-time.After(5 * time.Second):
		t.Fatal("notification never arrived")
	}

	// The consumer's dispatch span flushes when its serveHTTP returns,
	// which can trail the producer seeing the delivery response by a
	// beat — poll until the stitched trace is complete.
	trace, ok := awaitStitchedTrace(t, 2*time.Second)
	if !ok {
		t.Fatalf("no stitched trace with a wsn.deliver span; traces:\n%s", dumpTraces())
	}

	// The Set request must have crossed at least five named stages, the
	// delivery hop into the consumer container among them.
	stages := map[string]bool{}
	for _, s := range trace.Spans {
		stages[s.Name] = true
	}
	want := []string{"container.dispatch", "handler", "xmldb.update", "wsn.notify", "wsn.deliver", "xmlutil.serialize"}
	found := 0
	for _, name := range want {
		if stages[name] {
			found++
		}
	}
	if found < 5 {
		t.Fatalf("stitched trace names %d of the expected stages %v, want >= 5; got %v", found, want, stages)
	}

	// MessageID/RelatesTo linkage: the deliver span carries the
	// MessageID the producer stamped on the outbound Notify, the
	// consumer's response relates back to that same id, and the absorbed
	// consumer dispatch root — the only container.dispatch span with a
	// parent — hangs under the deliver span with the matching inbound id.
	deliver := trace.Span("wsn.deliver")
	if deliver == nil {
		t.Fatal("stitched trace has no wsn.deliver span")
	}
	if deliver.MessageID == "" {
		t.Fatal("deliver span carries no MessageID")
	}
	if deliver.RelatesTo != deliver.MessageID {
		t.Fatalf("deliver span RelatesTo = %q, want its own MessageID %q", deliver.RelatesTo, deliver.MessageID)
	}
	var downstream *obs.SpanData
	for i := range trace.Spans {
		s := &trace.Spans[i]
		if s.Name == "container.dispatch" && s.Parent != "" {
			downstream = s
			break
		}
	}
	if downstream == nil {
		t.Fatalf("stitched trace absorbed no downstream dispatch root; spans: %v", stages)
	}
	if downstream.Parent != deliver.ID {
		t.Fatalf("downstream dispatch parented under %q, want the deliver span %q", downstream.Parent, deliver.ID)
	}
	if downstream.MessageID != deliver.MessageID {
		t.Fatalf("downstream dispatch saw MessageID %q, deliver sent %q", downstream.MessageID, deliver.MessageID)
	}
}

// awaitStitchedTrace polls the trace ring until stitching yields a
// trace that contains a wsn.deliver span together with an absorbed
// downstream dispatch (a container.dispatch span with a parent).
func awaitStitchedTrace(t *testing.T, timeout time.Duration) (obs.TraceData, bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for _, tr := range obs.Stitch(obs.Traces()) {
			if tr.Span("wsn.deliver") == nil {
				continue
			}
			for _, s := range tr.Spans {
				if s.Name == "container.dispatch" && s.Parent != "" {
					return tr, true
				}
			}
		}
		if time.Now().After(deadline) {
			return obs.TraceData{}, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func dumpTraces() string {
	data, err := obs.TracesJSON()
	if err != nil {
		return err.Error()
	}
	return string(data)
}

#!/usr/bin/env bash
# Observability smoke test: build counterd and gridctl, start a
# two-instance sharded cluster with the admin endpoints enabled, scrape
# /metrics through `gridctl metrics`, and assert every migrated counter
# family plus the per-stage latency histogram is exposed. Also
# exercises `gridctl trace` against /traces, the fleet view
# (`gridctl top` across both admins), server-side federation
# (`gridctl federate` on the peer-configured instance), and the SLO and
# flight-recorder endpoints. Run via `make obs-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
pid=""
pid2=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid2" ] && kill "$pid2" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/counterd" ./cmd/counterd
go build -o "$tmp/gridctl" ./cmd/gridctl

# The daemon prints its admin endpoint once the listener is up; poll
# the log for it rather than guessing a port.
wait_admin() { # logfile pidvar -> echoes admin URL
    local log="$1" dpid="$2" admin=""
    for _ in $(seq 1 100); do
        admin="$(sed -n 's/.*admin endpoint: *//p' "$log" | head -n 1)"
        [ -n "$admin" ] && break
        if ! kill -0 "$dpid" 2>/dev/null; then
            echo "obs-smoke: counterd exited early:" >&2
            cat "$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$admin" ]; then
        echo "obs-smoke: counterd never printed its admin endpoint:" >&2
        cat "$log" >&2
        exit 1
    fi
    echo "$admin"
}

"$tmp/counterd" -shards 2 -admin 127.0.0.1:0 >"$tmp/counterd.log" 2>&1 &
pid=$!
admin="$(wait_admin "$tmp/counterd.log" "$pid")"

# Second instance federates the first through its /federate endpoint.
"$tmp/counterd" -shards 2 -admin 127.0.0.1:0 -peers "$admin" >"$tmp/counterd2.log" 2>&1 &
pid2=$!
admin2="$(wait_admin "$tmp/counterd2.log" "$pid2")"

"$tmp/gridctl" -admin "$admin" metrics >"$tmp/metrics.txt"

# One name per migrated counter family (labeled families match on the
# prefix), plus the unified stage histogram.
required="
ogsa_container_requests_total
ogsa_container_faults_total
ogsa_xmldb_ops_total
ogsa_xmldb_parses_total
ogsa_wssec_chain_verifications_total
ogsa_wssec_trust_cache_hits_total
ogsa_xml_parse_total
ogsa_xml_parse_bytes_total
ogsa_wsn_delivery_attempts_total
ogsa_wsn_deliveries_total
ogsa_wsn_delivery_failures_total
ogsa_wsn_retries_total
ogsa_wsn_evictions_total
ogsa_wsn_state_write_errors_total
ogsa_wsn_broker_control_calls_total
ogsa_wsn_broker_control_errors_total
ogsa_wse_deliveries_total
ogsa_wse_delivery_failures_total
ogsa_wse_sink_dropped_total
ogsa_wse_state_write_errors_total
ogsa_retry_backoffs_total
ogsa_fanout_tasks_total
ogsa_stage_duration_seconds
ogsa_uptime_seconds
"
fail=0
for name in $required; do
    if ! grep -q "^$name" "$tmp/metrics.txt"; then
        echo "obs-smoke: /metrics is missing $name" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "obs-smoke: exposition was:" >&2
    cat "$tmp/metrics.txt" >&2
    exit 1
fi

# The trace command must reach /traces and exit clean even when the
# ring is empty (no requests have been served yet).
"$tmp/gridctl" -admin "$admin" trace >"$tmp/traces.txt"

# Fleet view across both admins: the merged FLEET row appears only
# when more than one instance is reachable.
"$tmp/gridctl" -admin "$admin,$admin2" top >"$tmp/top.txt"
if ! grep -q '^FLEET' "$tmp/top.txt"; then
    echo "obs-smoke: gridctl top across two admins shows no FLEET row:" >&2
    cat "$tmp/top.txt" >&2
    exit 1
fi

# Server-side federation: the peer-configured instance's /federate must
# merge both instances and carry the request counter family.
"$tmp/gridctl" -admin "$admin2" federate >"$tmp/federate.txt"
if ! grep -q '^# federate: 2 instance(s)$' "$tmp/federate.txt"; then
    echo "obs-smoke: /federate did not merge 2 instances:" >&2
    cat "$tmp/federate.txt" >&2
    exit 1
fi
if ! grep -q '^ogsa_container_requests_total' "$tmp/federate.txt"; then
    echo "obs-smoke: /federate output is missing the request counter:" >&2
    cat "$tmp/federate.txt" >&2
    exit 1
fi

# SLO engine: the daemon evaluates once at startup, so the objectives
# table is populated immediately.
"$tmp/gridctl" -admin "$admin2" slo >"$tmp/slo.txt"
if ! grep -q 'OBJECTIVE' "$tmp/slo.txt" || ! grep -q 'availability' "$tmp/slo.txt"; then
    echo "obs-smoke: gridctl slo shows no availability objective:" >&2
    cat "$tmp/slo.txt" >&2
    exit 1
fi

# Flight recorder: dump must exit clean even when the ring is empty.
"$tmp/gridctl" -admin "$admin2" dump >"$tmp/dump.txt"

echo "obs-smoke: ok ($(grep -c '^ogsa_' "$tmp/metrics.txt") samples exposed, 2-instance fleet federated)"

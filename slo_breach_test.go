// SLO burn-rate alerting end to end, in process: a delivery-
// availability objective over the WSN producer's real delivery stats
// fires while fault injection keeps a subscriber dead, the firing
// transition dumps the fault flight recorder (which names the striking
// endpoint), and the alert resolves once the endpoint heals and the
// burn windows slide past the breach. The clock is injected, so the
// window arithmetic is deterministic under -race.
package altstacks_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"altstacks/internal/container"
	"altstacks/internal/faultinject"
	"altstacks/internal/obs"
	"altstacks/internal/obs/slo"
	"altstacks/internal/retry"
	"altstacks/internal/wsn"
	"altstacks/internal/xmldb"
	"altstacks/internal/xmlutil"
)

func TestSLOBreachAndHeal(t *testing.T) {
	obs.Enable()
	obs.ResetTraces()
	obs.ResetEvents()
	defer func() {
		obs.Disable()
		obs.ResetTraces()
		obs.ResetEvents()
	}()

	in := faultinject.New()
	c := container.New(container.SecurityNone)
	defer c.Close()
	setup := container.NewClient(container.ClientConfig{})
	deliver := container.NewClient(container.ClientConfig{})

	p := wsn.NewProducer(xmldb.NewMemory(xmldb.CostModel{}), "subs",
		func() string { return c.BaseURL() + "/manager" }, deliver)
	p.Deliver = in.WrapClient(p.Deliver)
	p.DeliveryTimeout = 200 * time.Millisecond
	p.Retry = retry.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	p.EvictAfter = 0 // keep the dead subscriber failing: a sustained burn, not a strike-out
	svc := &container.Service{Path: "/producer", Actions: map[string]container.ActionFunc{}}
	for a, fn := range p.ProducerPortType().Actions() {
		svc.Actions[a] = fn
	}
	c.Register(svc)
	c.Register(p.ManagerService("/manager"))
	if _, err := c.Start(); err != nil {
		t.Fatal(err)
	}

	quit := make(chan struct{})
	defer close(quit)
	newConsumer := func() *wsn.Consumer {
		cons, err := wsn.NewConsumer(64)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cons.Close)
		go func() {
			for {
				select {
				case <-cons.Ch:
				case <-quit:
					return
				}
			}
		}()
		if _, err := wsn.Subscribe(setup, c.EPR("/producer"), cons.EPR(),
			wsn.SubscribeOptions{Topic: wsn.Concrete("slo/tick")}); err != nil {
			t.Fatal(err)
		}
		return cons
	}
	healthy := newConsumer()
	_ = healthy
	doomed := newConsumer()
	doomedKey := faultinject.Key(doomed.EPR().Address)

	// The engine is driven synchronously with a hand-cranked clock; the
	// objective reads the producer's real cumulative delivery totals.
	now := time.Unix(1_000_000, 0)
	var dump bytes.Buffer
	var fired, resolved []slo.State
	engine := slo.New(slo.Config{
		Objectives: []slo.Objective{slo.SourceObjective("delivery-availability", "availability", 0.999,
			func() (int64, int64) {
				st := p.DeliveryStats()
				return st.Deliveries, st.Deliveries + st.Failures
			})},
		ShortWindow: 30 * time.Second,
		LongWindow:  100 * time.Second,
		Burn:        10,
		Now:         func() time.Time { return now },
		DumpTo:      &dump,
		OnFire:      func(s slo.State) { fired = append(fired, s) },
		OnResolve:   func(s slo.State) { resolved = append(resolved, s) },
	})
	defer engine.Stop()

	// publish drives n fan-outs; delivery errors are expected while the
	// doomed subscriber is dead (the stats assertions see them), so
	// Notify's aggregate error is deliberately ignored.
	publish := func(n int) {
		msg := xmlutil.New("urn:slo", "Ev").Add(xmlutil.NewText("urn:slo", "V", "1"))
		for i := 0; i < n; i++ {
			_, _ = p.Notify("slo/tick", msg)
		}
	}
	step := func() []slo.State {
		now = now.Add(10 * time.Second)
		return engine.Evaluate()
	}

	// Healthy phase: both subscribers deliver, nothing fires.
	engine.Evaluate() // baseline sample at t0
	publish(3)
	if st := p.DeliveryStats(); st.Failures != 0 || st.Deliveries < 6 {
		t.Fatalf("healthy phase broken before the breach: %+v", st)
	}
	if sts := step(); sts[0].Firing {
		t.Fatalf("healthy deliveries fired the alert: %+v", sts[0])
	}

	// Breach: kill one of the two subscribers — every publish now burns
	// half its deliveries against a 0.1%% budget.
	in.Set(doomedKey, faultinject.Plan{FailAll: true})
	publish(5)
	if st := p.DeliveryStats(); st.Failures < 5 {
		t.Fatalf("fault injection did not bite: %+v", st)
	}
	sts := step()
	if !sts[0].Firing {
		t.Fatalf("sustained delivery failures did not fire: %+v", sts[0])
	}
	if len(fired) != 1 {
		t.Fatalf("fire transitions = %d, want 1", len(fired))
	}

	// Firing must have dumped the flight recorder, and the recorder must
	// name the delivery faults that burned the budget.
	if !strings.Contains(dump.String(), "flight recorder:") ||
		!strings.Contains(dump.String(), "wsn.delivery_fault") {
		t.Fatalf("firing dump does not explain the breach:\n%s", dump.String())
	}
	kinds := map[string]bool{}
	for _, e := range obs.Events() {
		kinds[e.Kind] = true
	}
	if !kinds["wsn.delivery_fault"] || !kinds["slo.fire"] {
		t.Fatalf("flight recorder missing breach events; have %v", kinds)
	}

	// Heal: resurrect the endpoint, push good traffic, slide the short
	// window past the breach. The alert must resolve even though the
	// long window still remembers it.
	in.Clear(doomedKey)
	publish(6)
	cleared := false
	for i := 0; i < 6 && !cleared; i++ {
		publish(1)
		cleared = !step()[0].Firing
	}
	if !cleared {
		t.Fatalf("alert never resolved after heal: %+v", engine.States())
	}
	if len(resolved) != 1 {
		t.Fatalf("resolve transitions = %d, want 1", len(resolved))
	}
	for _, e := range obs.Events() {
		kinds[e.Kind] = true
	}
	if !kinds["slo.resolve"] {
		t.Fatal("resolve transition not recorded in the flight recorder")
	}
}
